package rpcserver

import (
	"testing"

	"repro/internal/breaker"
	"repro/internal/sched"
	"repro/internal/sim"
)

// faultyServer builds a 1-slot breaker-enabled server whose Fail hook
// fails every BE completion while *failing is true.
func faultyServer(failing *bool, cfg breaker.Config) *Server {
	c := Config{KernelThreads: 1, UserThreadsPerKT: 1,
		ServiceMean: 50 * sim.Microsecond, Seed: 50,
		BreakerEnabled: true, Breaker: cfg,
		Fail: func(r *sched.Request) bool { return r.Class == sched.ClassBE && *failing }}
	return New(c)
}

// TestBreakerTripsAndRecoversSimTime: the full breaker arc driven
// entirely by the sim clock — BE failures trip the BE breaker, open
// fast-rejects BE while LC flows untouched, and after OpenTimeout of
// sim time a healthy probe recloses it.
func TestBreakerTripsAndRecoversSimTime(t *testing.T) {
	failing := true
	s := faultyServer(&failing, breaker.Config{
		FailureThreshold: 3,
		OpenTimeout:      sim.Millisecond.Duration(), // 1ms of sim time
	})

	// Three failing BE completions, run to quiescence each time so the
	// completions (and Failure reports) land before the next arrival.
	for i := 0; i < 3; i++ {
		s.Submit(sched.NewRequest(uint64(i+1), sched.ClassBE, s.Engine().Now(), 50*sim.Microsecond))
		s.Engine().RunAll()
	}
	if s.Failed[sched.ClassBE] != 3 {
		t.Fatalf("Failed[BE] = %d, want 3", s.Failed[sched.ClassBE])
	}
	be := s.Breaker(sched.ClassBE)
	if got := be.State(s.simNow()); got != breaker.Open {
		t.Fatalf("BE breaker %v after threshold failures, want open", got)
	}

	// Open fast-rejects BE at Submit; the request never queues or runs.
	rejected := sched.NewRequest(10, sched.ClassBE, s.Engine().Now(), 50*sim.Microsecond)
	s.Submit(rejected)
	if s.RejectedUnavailable[sched.ClassBE] != 1 {
		t.Fatalf("RejectedUnavailable = %v, want [0 1]", s.RejectedUnavailable)
	}
	s.Engine().RunAll()
	if rejected.Done() {
		t.Fatal("breaker-rejected request ran anyway")
	}

	// LC is isolated: its breaker never saw a failure and still admits.
	s.Submit(sched.NewRequest(11, sched.ClassLC, s.Engine().Now(), 50*sim.Microsecond))
	s.Engine().RunAll()
	if s.RejectedUnavailable[sched.ClassLC] != 0 {
		t.Fatalf("LC rejected: %v", s.RejectedUnavailable)
	}
	if lc := s.Breaker(sched.ClassLC); lc.Trips() != 0 {
		t.Fatalf("LC breaker tripped %d times", lc.Trips())
	}

	// Advance sim time past OpenTimeout; the fault clears; a healthy
	// probe recloses the breaker and BE flows again.
	failing = false
	s.Engine().Schedule(2*sim.Millisecond, func() {})
	s.Engine().RunAll()
	if got := be.State(s.simNow()); got != breaker.HalfOpen {
		t.Fatalf("BE breaker %v after open timeout, want half-open", got)
	}
	s.Submit(sched.NewRequest(12, sched.ClassBE, s.Engine().Now(), 50*sim.Microsecond))
	s.Engine().RunAll()
	if got := be.State(s.simNow()); got != breaker.Closed {
		t.Fatalf("BE breaker %v after healthy probe, want closed", got)
	}
	if be.Trips() != 1 {
		t.Fatalf("trips = %d, want 1 (no flapping)", be.Trips())
	}
	s.Submit(sched.NewRequest(13, sched.ClassBE, s.Engine().Now(), 50*sim.Microsecond))
	s.Engine().RunAll()
	if s.RejectedUnavailable[sched.ClassBE] != 1 {
		t.Fatalf("reclosed breaker still rejecting: %v", s.RejectedUnavailable)
	}

	// Determinism: an identical run reproduces the exact counters.
	failing2 := true
	s2 := faultyServer(&failing2, breaker.Config{
		FailureThreshold: 3, OpenTimeout: sim.Millisecond.Duration()})
	for i := 0; i < 3; i++ {
		s2.Submit(sched.NewRequest(uint64(i+1), sched.ClassBE, s2.Engine().Now(), 50*sim.Microsecond))
		s2.Engine().RunAll()
	}
	s2.Submit(sched.NewRequest(10, sched.ClassBE, s2.Engine().Now(), 50*sim.Microsecond))
	if s2.RejectedUnavailable != s.RejectedUnavailable || s2.Failed != s.Failed {
		t.Fatalf("not deterministic: %v/%v vs %v/%v",
			s2.RejectedUnavailable, s2.Failed, s.RejectedUnavailable, s.Failed)
	}
}

// TestBreakerCancelledProbeAbandons: cancelling a backlogged half-open
// probe returns its slot instead of wedging the breaker half-open.
func TestBreakerCancelledProbeAbandons(t *testing.T) {
	failing := true
	s := faultyServer(&failing, breaker.Config{
		FailureThreshold: 1,
		OpenTimeout:      sim.Millisecond.Duration(),
	})
	s.Submit(sched.NewRequest(1, sched.ClassBE, 0, 50*sim.Microsecond))
	s.Engine().RunAll()
	be := s.Breaker(sched.ClassBE)
	if got := be.State(s.simNow()); got != breaker.Open {
		t.Fatalf("state %v, want open", got)
	}

	failing = false
	// Occupy the single slot with a long LC request so the probe waits
	// in the backlog, then advance past the open timeout.
	s.Engine().Schedule(2*sim.Millisecond, func() {
		s.Submit(sched.NewRequest(2, sched.ClassLC, s.Engine().Now(), sim.Millisecond))
		probe := sched.NewRequest(3, sched.ClassBE, s.Engine().Now(), 50*sim.Microsecond)
		s.Submit(probe) // claims the single half-open probe slot
		// A second BE is refused while the probe is outstanding.
		s.Submit(sched.NewRequest(4, sched.ClassBE, s.Engine().Now(), 50*sim.Microsecond))
		if s.RejectedUnavailable[sched.ClassBE] != 1 {
			t.Fatalf("RejectedUnavailable = %v, want [0 1]", s.RejectedUnavailable)
		}
		// The client hangs up; the abandoned claim frees the slot for a
		// fresh probe, which completes healthy and recloses the breaker.
		if !s.Cancel(probe) {
			t.Fatal("Cancel of the backlogged probe failed")
		}
		s.Submit(sched.NewRequest(5, sched.ClassBE, s.Engine().Now(), 50*sim.Microsecond))
		if s.RejectedUnavailable[sched.ClassBE] != 1 {
			t.Fatal("abandoned probe slot was not released")
		}
	})
	s.Engine().RunAll()
	if got := be.State(s.simNow()); got != breaker.Closed {
		t.Fatalf("state %v after replacement probe completed, want closed", got)
	}
}

// TestBreakerOffByDefault: without BreakerEnabled the breaker
// machinery is absent and failure marking still counts.
func TestBreakerOffByDefault(t *testing.T) {
	s := New(Config{KernelThreads: 1, UserThreadsPerKT: 1,
		ServiceMean: 50 * sim.Microsecond, Seed: 51,
		Fail: func(*sched.Request) bool { return true }})
	if s.Breaker(sched.ClassLC) != nil || s.Breaker(sched.ClassBE) != nil {
		t.Fatal("breakers built without BreakerEnabled")
	}
	for i := 0; i < 10; i++ {
		s.Submit(sched.NewRequest(uint64(i+1), sched.ClassLC, 0, 50*sim.Microsecond))
	}
	s.Engine().RunAll()
	if s.RejectedUnavailable[sched.ClassLC] != 0 {
		t.Fatalf("rejections with no breaker: %v", s.RejectedUnavailable)
	}
	if s.Failed[sched.ClassLC] != 10 {
		t.Fatalf("Failed = %v, want 10 LC", s.Failed)
	}
}
