package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	for i := int64(1); i <= 100; i++ {
		h.Record(i)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("Min/Max = %d/%d", h.Min(), h.Max())
	}
	if h.Mean() != 50.5 {
		t.Fatalf("Mean = %f", h.Mean())
	}
	if med := h.Median(); med < 49 || med > 51 {
		t.Fatalf("Median = %d, want ~50", med)
	}
	if p99 := h.P99(); p99 < 98 || p99 > 100 {
		t.Fatalf("P99 = %d, want ~99", p99)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Record(-5)
	if h.Min() != 0 {
		t.Fatalf("negative record should clamp to 0, got min %d", h.Min())
	}
}

// Property: histogram quantiles agree with exact quantiles within the
// advertised relative error (1/2^7 < 1%) plus one representable step.
func TestHistogramQuantileAccuracy(t *testing.T) {
	f := func(raw []uint32, qSel uint8) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram()
		samples := make([]int64, len(raw))
		for i, v := range raw {
			samples[i] = int64(v)
			h.Record(int64(v))
		}
		q := []float64{0.5, 0.9, 0.99, 0.999, 1.0}[int(qSel)%5]
		exact := ExactQuantile(samples, q)
		got := h.Quantile(q)
		if exact == 0 {
			return got <= 1
		}
		relErr := math.Abs(float64(got-exact)) / float64(exact)
		return relErr < 0.01+2.0/float64(exact)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	h := NewHistogram()
	rngVals := []int64{3, 1400, 27, 88, 9000000, 12, 500, 500, 77, 123456789}
	for _, v := range rngVals {
		h.Record(v)
	}
	prev := int64(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%.2f: %d < %d", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramLargeValues(t *testing.T) {
	h := NewHistogram()
	big := int64(1) << 55
	h.Record(big)
	got := h.Quantile(1)
	if relErr := math.Abs(float64(got-big)) / float64(big); relErr > 0.01 {
		t.Fatalf("large value quantization error %f", relErr)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := int64(0); i < 1000; i++ {
		a.Record(i)
		b.Record(i + 1000)
	}
	a.Merge(b)
	if a.Count() != 2000 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Max() < 1990 {
		t.Fatalf("merged max = %d", a.Max())
	}
	if med := a.Median(); med < 980 || med > 1020 {
		t.Fatalf("merged median = %d, want ~1000", med)
	}
	a.Merge(nil) // no-op
}

func TestHistogramMergePrecisionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a := NewHistogramPrecision(5)
	b := NewHistogramPrecision(7)
	b.Record(1)
	a.Merge(b)
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Record(5)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 || h.Sum() != 0 {
		t.Fatal("reset did not clear histogram")
	}
	h.Record(7)
	if h.Min() != 7 || h.Max() != 7 {
		t.Fatal("histogram broken after reset")
	}
}

func TestHistogramSnapshotString(t *testing.T) {
	h := NewHistogram()
	h.Record(10)
	s := h.Snapshot()
	if s.Count != 1 || s.String() == "" {
		t.Fatal("bad snapshot")
	}
}

func TestNewHistogramPrecisionPanics(t *testing.T) {
	for _, bits := range []uint{0, 21} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("subBits=%d did not panic", bits)
				}
			}()
			NewHistogramPrecision(bits)
		}()
	}
}

func TestExactQuantile(t *testing.T) {
	s := []int64{5, 1, 9, 3, 7}
	if ExactQuantile(s, 0) != 1 || ExactQuantile(s, 1) != 9 {
		t.Fatal("extremes wrong")
	}
	if ExactQuantile(s, 0.5) != 5 {
		t.Fatalf("median = %d", ExactQuantile(s, 0.5))
	}
	if ExactQuantile(nil, 0.5) != 0 {
		t.Fatal("empty should be 0")
	}
	// input must not be mutated
	if s[0] != 5 {
		t.Fatal("ExactQuantile mutated input")
	}
}

func TestHistogramCDF(t *testing.T) {
	h := NewHistogram()
	for i := int64(1); i <= 1000; i++ {
		h.Record(i)
	}
	cdf := h.CDF([]float64{0.1, 0.5, 0.9, 0.99})
	if len(cdf) != 4 {
		t.Fatalf("%d points", len(cdf))
	}
	prev := int64(-1)
	for _, p := range cdf {
		if p.Value < prev {
			t.Fatal("CDF not monotone")
		}
		prev = p.Value
	}
	if mid := cdf[1].Value; mid < 480 || mid > 520 {
		t.Fatalf("p50 = %d", mid)
	}
}

func TestHistogramStdDev(t *testing.T) {
	h := NewHistogram()
	if h.StdDev() != 0 {
		t.Fatal("empty stddev should be 0")
	}
	// Uniform 1..1000: stddev ≈ 288.7.
	for i := int64(1); i <= 1000; i++ {
		h.Record(i)
	}
	sd := h.StdDev()
	if math.Abs(sd-288.7) > 6 {
		t.Fatalf("stddev = %f, want ~288.7", sd)
	}
}
