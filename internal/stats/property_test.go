package stats

import (
	"math"
	"math/rand"
	"testing"
)

// Property tests for the histogram: invariants the rest of the repo —
// the adaptive controller, the metrics plane, and the perf-validation
// gate — silently leans on. Seeded deterministically so failures
// reproduce.

// randomHistogram fills a histogram (and returns the raw samples) from
// a mix of distributions chosen by the seed: uniform, exponential-ish
// heavy tail, and small-integer clusters, covering both the linear and
// logarithmic bucket regimes.
func randomHistogram(rng *rand.Rand, n int) (*Histogram, []int64) {
	h := NewHistogram()
	samples := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		var v int64
		switch rng.Intn(3) {
		case 0:
			v = rng.Int63n(1 << 7) // linear buckets
		case 1:
			v = rng.Int63n(1 << 40) // deep log buckets
		default:
			v = int64(math.Expm1(rng.Float64() * 20)) // heavy tail
		}
		h.Record(v)
		samples = append(samples, v)
	}
	return h, samples
}

// TestQuantileMonotonicity: q1 ≤ q2 ⇒ Quantile(q1) ≤ Quantile(q2), for
// random histograms over a dense quantile grid including the clamped
// extremes.
func TestQuantileMonotonicity(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h, _ := randomHistogram(rng, 1+rng.Intn(5000))
		qs := []float64{-0.5, 0, 1e-9, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 0.9999, 1, 1.5}
		prev := int64(math.MinInt64)
		for _, q := range qs {
			v := h.Quantile(q)
			if v < prev {
				t.Fatalf("seed %d: Quantile(%v)=%d < previous %d", seed, q, v, prev)
			}
			if v < h.Min() || v > h.Max() {
				t.Fatalf("seed %d: Quantile(%v)=%d outside [min=%d, max=%d]", seed, q, v, h.Min(), h.Max())
			}
			prev = v
		}
	}
}

// TestMergeThenQueryEqualsQueryThenSumBounds: merging histograms and
// querying must agree with querying the parts — exactly for the
// additive summaries (count, sum, min, max), and within the component
// envelope for quantiles: for any q, the merged quantile lies in
// [min_i Q_i(q), max_i Q_i(q)] — both sides quantize on identical
// bucket boundaries, so the bound is exact, not approximate.
func TestMergeThenQueryEqualsQueryThenSumBounds(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		parts := make([]*Histogram, 2+rng.Intn(4))
		merged := NewHistogram()
		var all []int64
		var wantCount uint64
		var wantSum int64
		for i := range parts {
			h, samples := randomHistogram(rng, 1+rng.Intn(1000))
			parts[i] = h
			merged.Merge(h)
			all = append(all, samples...)
			wantCount += h.Count()
			wantSum += h.Sum()
		}
		if merged.Count() != wantCount {
			t.Fatalf("seed %d: merged count %d != Σ parts %d", seed, merged.Count(), wantCount)
		}
		if merged.Sum() != wantSum {
			t.Fatalf("seed %d: merged sum %d != Σ parts %d", seed, merged.Sum(), wantSum)
		}
		lo, hi := parts[0].Min(), parts[0].Max()
		for _, p := range parts[1:] {
			lo, hi = min(lo, p.Min()), max(hi, p.Max())
		}
		if merged.Min() != lo || merged.Max() != hi {
			t.Fatalf("seed %d: merged extremes [%d,%d] != part envelope [%d,%d]",
				seed, merged.Min(), merged.Max(), lo, hi)
		}
		for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 0.999, 1} {
			mv := merged.Quantile(q)
			qlo, qhi := int64(math.MaxInt64), int64(math.MinInt64)
			for _, p := range parts {
				v := p.Quantile(q)
				qlo, qhi = min(qlo, v), max(qhi, v)
			}
			if mv < qlo || mv > qhi {
				t.Fatalf("seed %d: merged Quantile(%v)=%d outside component envelope [%d,%d]",
					seed, q, mv, qlo, qhi)
			}
			// And the merged histogram stays faithful to ground truth
			// within the documented relative error (plus one representative
			// half-bucket at the low end).
			exact := ExactQuantile(all, q)
			relErr := 1.0 / float64(int(1)<<defaultSubBits)
			slack := float64(exact)*2*relErr + 1
			if d := math.Abs(float64(mv - exact)); d > slack {
				t.Fatalf("seed %d: merged Quantile(%v)=%d vs exact %d: off by %.0f > %.0f",
					seed, q, mv, exact, d, slack)
			}
		}
	}
}

// TestEmptyHistogramEdgeCases: every summary of an empty histogram is
// the documented zero, and Snapshot mirrors them.
func TestEmptyHistogramEdgeCases(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.StdDev() != 0 {
		t.Errorf("empty scalar summaries: count=%d sum=%d mean=%v stddev=%v",
			h.Count(), h.Sum(), h.Mean(), h.StdDev())
	}
	if h.Min() != 0 || h.Max() != 0 {
		t.Errorf("empty extremes: min=%d max=%d", h.Min(), h.Max())
	}
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if v := h.Quantile(q); v != 0 {
			t.Errorf("empty Quantile(%v) = %d, want 0", q, v)
		}
	}
	if s := h.Snapshot(); s != (Snapshot{}) {
		t.Errorf("empty snapshot not zero: %+v", s)
	}
	// Merging an empty histogram is a no-op; merging into one is a copy.
	h2, _ := randomHistogram(rand.New(rand.NewSource(7)), 100)
	before := h2.Snapshot()
	h2.Merge(h)
	h2.Merge(nil)
	if h2.Snapshot() != before {
		t.Error("merging empty/nil changed the receiver")
	}
	h.Merge(h2)
	if h.Snapshot() != before {
		t.Errorf("merge into empty: got %+v, want %+v", h.Snapshot(), before)
	}
}

// TestSingleSampleEdgeCases: with one observation v, every quantile is
// exactly v (the min/max clamp cancels bucket rounding), and the
// moments collapse.
func TestSingleSampleEdgeCases(t *testing.T) {
	for _, v := range []int64{0, 1, 127, 128, 12345, 1 << 40, math.MaxInt64 / 2} {
		h := NewHistogram()
		h.Record(v)
		if h.Count() != 1 || h.Sum() != v || h.Min() != v || h.Max() != v {
			t.Errorf("v=%d: count=%d sum=%d min=%d max=%d", v, h.Count(), h.Sum(), h.Min(), h.Max())
		}
		for _, q := range []float64{0, 0.001, 0.5, 0.999, 1} {
			if got := h.Quantile(q); got != v {
				t.Errorf("v=%d: Quantile(%v) = %d, want exactly v", v, q, got)
			}
		}
		if h.Mean() != float64(v) {
			t.Errorf("v=%d: mean %v", v, h.Mean())
		}
		if h.StdDev() != 0 {
			t.Errorf("v=%d: stddev %v, want 0 for single sample", v, h.StdDev())
		}
	}
	// Negative values clamp to zero by contract.
	h := NewHistogram()
	h.Record(-42)
	if h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Errorf("negative record not clamped: min=%d max=%d p50=%d", h.Min(), h.Max(), h.Quantile(0.5))
	}
}
