package stats

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestHillEstimatorOnPareto(t *testing.T) {
	// Samples from Pareto(α) should recover α within ~15%.
	for _, alpha := range []float64{0.8, 1.2, 1.8} {
		rng := sim.NewRNG(uint64(alpha * 1000))
		samples := make([]float64, 20000)
		for i := range samples {
			samples[i] = rng.Pareto(alpha, 1.0)
		}
		got := HillTailIndex(samples, 1000)
		if math.Abs(got-alpha)/alpha > 0.15 {
			t.Errorf("Hill(α=%.1f) = %.3f", alpha, got)
		}
	}
}

func TestHillEstimatorLightTail(t *testing.T) {
	// Exponential data is light-tailed: the Hill estimate over the top 5%
	// should be well above the heavy-tail threshold of 2.
	rng := sim.NewRNG(11)
	samples := make([]float64, 20000)
	for i := range samples {
		samples[i] = rng.Exp(5.0)
	}
	got := TailIndexFromLatencies(samples)
	if got < 2 {
		t.Fatalf("exponential data classified heavy-tailed: α = %.3f", got)
	}
}

func TestHillEstimatorDegenerateInputs(t *testing.T) {
	if !math.IsInf(HillTailIndex(nil, 10), 1) {
		t.Fatal("nil input should be +Inf")
	}
	if !math.IsInf(HillTailIndex([]float64{1, 2}, 10), 1) {
		t.Fatal("tiny input should be +Inf")
	}
	same := make([]float64, 100)
	for i := range same {
		same[i] = 7
	}
	if !math.IsInf(HillTailIndex(same, 10), 1) {
		t.Fatal("constant input should be +Inf (no tail)")
	}
	withZeros := make([]float64, 100)
	if !math.IsInf(HillTailIndex(withZeros, 10), 1) {
		t.Fatal("all-zero input should be +Inf")
	}
}

func TestDispersionRatio(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 98; i++ {
		h.Record(10)
	}
	h.Record(1000)
	h.Record(1000)
	r := DispersionRatio(h)
	if r < 50 {
		t.Fatalf("dispersion ratio = %f, want large", r)
	}
	if DispersionRatio(NewHistogram()) != 0 {
		t.Fatal("empty histogram dispersion should be 0")
	}
}

func TestTableFormatting(t *testing.T) {
	tb := &Table{Title: "demo", Columns: []string{"a", "b"}}
	tb.AddRow(1, 2.5)
	tb.AddRow("x", 3.0)
	s := tb.String()
	if s == "" || len(tb.Rows) != 2 {
		t.Fatal("table formatting broken")
	}
	if tb.Rows[0][1] != "2.5" || tb.Rows[1][1] != "3" {
		t.Fatalf("float trimming wrong: %v", tb.Rows)
	}
}

func TestSeries(t *testing.T) {
	s := &Series{Name: "lat"}
	if s.Mean() != 0 || s.Max() != 0 {
		t.Fatal("empty series should report zeros")
	}
	s.Add(0, 1)
	s.Add(1, 3)
	if s.Mean() != 2 || s.Max() != 3 {
		t.Fatalf("series mean/max = %f/%f", s.Mean(), s.Max())
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	if c.Reset() != 5 || c.Value() != 0 {
		t.Fatal("reset broken")
	}
}
