package stats

import (
	"fmt"
	"strings"
)

// Point is one (time, value) observation in a Series.
type Point struct {
	T float64 // seconds since experiment start
	V float64
}

// Series is a named sequence of time-ordered observations, used to
// regenerate the paper's "metric over time" figures (Fig. 9, Fig. 14).
type Series struct {
	Name   string
	Unit   string
	Points []Point
}

// Add appends an observation.
func (s *Series) Add(t, v float64) { s.Points = append(s.Points, Point{t, v}) }

// Mean reports the average of the values (0 if empty).
func (s *Series) Mean() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	var sum float64
	for _, p := range s.Points {
		sum += p.V
	}
	return sum / float64(len(s.Points))
}

// Max reports the largest value (0 if empty).
func (s *Series) Max() float64 {
	var max float64
	for i, p := range s.Points {
		if i == 0 || p.V > max {
			max = p.V
		}
	}
	return max
}

// Table is a simple column-oriented result table that formats itself the
// way the experiment harness prints rows — one row per line, tab
// separated, with a header. Every figure/table regenerator returns one
// or more Tables.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row formatted with %v per cell.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// String renders the table with an underlined title and tab-separated
// columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n", t.Title)
	}
	b.WriteString(strings.Join(t.Columns, "\t"))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(strings.Join(r, "\t"))
		b.WriteByte('\n')
	}
	return b.String()
}

// Counter is a monotonically increasing event counter with a helper for
// rates over a window.
type Counter struct {
	n uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds delta.
func (c *Counter) Add(delta uint64) { c.n += delta }

// Value reports the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset zeroes the counter and returns the previous value.
func (c *Counter) Reset() uint64 {
	v := c.n
	c.n = 0
	return v
}
