// Package stats provides the measurement substrate for the
// reproduction: high-dynamic-range latency histograms, percentile
// queries, time-series recorders, and the Hill tail-index estimator used
// by the adaptive quantum controller (Algorithm 1 in the paper).
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// Histogram records int64 values (virtual nanoseconds in this repo) with
// bounded relative error, in the style of HDR histograms: values are
// bucketed logarithmically by magnitude and linearly within a magnitude,
// giving a worst-case relative quantization error of 1/2^subBits.
//
// The zero value is not usable; call NewHistogram. Histograms are not
// safe for concurrent use: the simulator is single-threaded, and the
// live library keeps one per worker and merges.
type Histogram struct {
	subBits  uint
	subCount int
	buckets  []uint64
	count    uint64
	sum      int64
	min, max int64
}

const defaultSubBits = 7 // <1% relative error

// NewHistogram returns an empty histogram with default precision
// (relative error below 1%).
func NewHistogram() *Histogram { return NewHistogramPrecision(defaultSubBits) }

// NewHistogramPrecision returns an empty histogram whose relative
// quantization error is bounded by 1/2^subBits. subBits must be in
// [1, 20].
func NewHistogramPrecision(subBits uint) *Histogram {
	if subBits < 1 || subBits > 20 {
		panic(fmt.Sprintf("stats: subBits %d out of range [1,20]", subBits))
	}
	return &Histogram{
		subBits:  subBits,
		subCount: 1 << subBits,
		buckets:  make([]uint64, (64-int(subBits))*(1<<subBits)),
		min:      math.MaxInt64,
		max:      math.MinInt64,
	}
}

// bucketIndex maps v >= 0 to a bucket.
func (h *Histogram) bucketIndex(v int64) int {
	u := uint64(v)
	if u < uint64(h.subCount) {
		return int(u)
	}
	// magnitude = index of highest set bit above subBits
	mag := bits.Len64(u) - int(h.subBits) - 1
	sub := int(u >> uint(mag) & uint64(h.subCount-1))
	return (mag+1)*h.subCount + sub
}

// bucketLow returns the lowest value mapping to bucket i; bucketMid the
// representative value reported for percentiles.
func (h *Histogram) bucketMid(i int) int64 {
	if i < h.subCount {
		return int64(i)
	}
	mag := i/h.subCount - 1
	sub := i % h.subCount
	low := (uint64(h.subCount) | uint64(sub)) << uint(mag)
	width := uint64(1) << uint(mag)
	return int64(low + width/2)
}

// Record adds one observation. Negative values are clamped to zero (they
// indicate a measurement bug elsewhere, but must not corrupt the
// histogram).
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[h.bucketIndex(v)]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count reports the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum reports the sum of recorded observations.
func (h *Histogram) Sum() int64 { return h.sum }

// Mean reports the arithmetic mean, or 0 for an empty histogram.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min reports the smallest recorded value (0 for empty).
func (h *Histogram) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max reports the largest recorded value (0 for empty).
func (h *Histogram) Max() int64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile returns the value at quantile q in [0, 1]. For q outside the
// range it is clamped. Empty histograms return 0.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		cum += c
		if cum >= target {
			v := h.bucketMid(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Median is Quantile(0.5).
func (h *Histogram) Median() int64 { return h.Quantile(0.5) }

// P99 is Quantile(0.99).
func (h *Histogram) P99() int64 { return h.Quantile(0.99) }

// P999 is Quantile(0.999).
func (h *Histogram) P999() int64 { return h.Quantile(0.999) }

// Merge adds all of other's observations into h. Both histograms must
// have the same precision.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.count == 0 {
		return
	}
	if h.subBits != other.subBits {
		panic("stats: merging histograms with different precision")
	}
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	h.count += other.count
	h.sum += other.sum
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
}

// Reset clears all observations, retaining precision.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i] = 0
	}
	h.count = 0
	h.sum = 0
	h.min = math.MaxInt64
	h.max = math.MinInt64
}

// Snapshot summarizes a histogram at a point in time.
type Snapshot struct {
	Count            uint64
	Mean             float64
	Min, Median, P99 int64
	P999, Max        int64
}

// Snapshot captures the current summary statistics.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count:  h.count,
		Mean:   h.Mean(),
		Min:    h.Min(),
		Median: h.Median(),
		P99:    h.P99(),
		P999:   h.P999(),
		Max:    h.Max(),
	}
}

func (s Snapshot) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%d p99=%d p999=%d max=%d",
		s.Count, s.Mean, s.Median, s.P99, s.P999, s.Max)
}

// ExactQuantile computes a quantile from raw samples (used by tests to
// validate the histogram against ground truth, and by small experiments
// where exactness matters more than memory).
func ExactQuantile(samples []int64, q float64) int64 {
	if len(samples) == 0 {
		return 0
	}
	s := make([]int64, len(samples))
	copy(s, samples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	return s[idx]
}

// CDFPoint is one point of a cumulative distribution export.
type CDFPoint struct {
	Value    int64
	Fraction float64
}

// CDF exports the distribution at the given quantiles (sorted ascending
// recommended), for plotting latency curves outside the harness.
func (h *Histogram) CDF(quantiles []float64) []CDFPoint {
	out := make([]CDFPoint, 0, len(quantiles))
	for _, q := range quantiles {
		out = append(out, CDFPoint{Value: h.Quantile(q), Fraction: q})
	}
	return out
}

// StdDev reports the standard deviation of recorded values (0 when
// fewer than two observations). It is computed from the bucket
// midpoints, so it carries the same ~1% relative quantization error as
// quantiles.
func (h *Histogram) StdDev() float64 {
	if h.count < 2 {
		return 0
	}
	mean := h.Mean()
	var sumSq float64
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		d := float64(h.bucketMid(i)) - mean
		sumSq += d * d * float64(c)
	}
	v := sumSq / float64(h.count)
	return math.Sqrt(v)
}
