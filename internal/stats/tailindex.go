package stats

import (
	"math"
	"sort"
)

// HillTailIndex estimates the tail index α of the distribution that
// produced samples, using the Hill estimator over the largest k order
// statistics. Small α (the paper uses 0 ≤ α < 2) indicates a heavy tail;
// the adaptive quantum controller lowers the time quantum when the
// estimate falls in that range.
//
// Returns +Inf when there are too few samples or no tail spread (a
// degenerate light tail), which callers treat as "not heavy-tailed".
func HillTailIndex(samples []float64, k int) float64 {
	n := len(samples)
	if k < 2 || n < k+1 {
		return math.Inf(1)
	}
	s := make([]float64, 0, n)
	for _, v := range samples {
		if v > 0 {
			s = append(s, v)
		}
	}
	n = len(s)
	if n < k+1 {
		return math.Inf(1)
	}
	sort.Float64s(s)
	// Hill estimator: 1/alpha = (1/k) Σ_{i=1..k} ln(X_{(n-i+1)} / X_{(n-k)})
	ref := s[n-k-1]
	if ref <= 0 {
		return math.Inf(1)
	}
	var sum float64
	for i := 0; i < k; i++ {
		sum += math.Log(s[n-1-i] / ref)
	}
	if sum <= 0 {
		return math.Inf(1)
	}
	return float64(k) / sum
}

// QuantileTailIndex estimates the tail index by fitting a Pareto
// through the p50 and p99.9 order statistics:
//
//	P(X > x) ∝ x^−α  ⇒  α = ln(0.5/0.001) / ln(x_p999 / x_p50)
//
// Unlike the Hill estimator it is stable on atomically-bimodal data
// (e.g. the paper's workloads A1/A2, where 99.5% of samples sit at one
// value), because it only needs the p99.9 order statistic to land in
// the long mode. It needs enough samples for p99.9 to be meaningful.
func QuantileTailIndex(samples []float64) float64 {
	n := len(samples)
	if n < 100 {
		return math.Inf(1)
	}
	s := make([]float64, n)
	copy(s, samples)
	sort.Float64s(s)
	p50 := s[n/2]
	p999 := s[n-1-n/1000]
	if p50 <= 0 || p999 <= p50 {
		return math.Inf(1)
	}
	return math.Log(0.5/0.001) / math.Log(p999/p50)
}

// TailIndexFromLatencies is the classifier used by Algorithm 1: it
// estimates the tail index of a statistics window. Large windows use
// the quantile fit (robust on bimodal service distributions); small
// windows fall back to the Hill estimator over the top 5% (at least
// 10) order statistics.
func TailIndexFromLatencies(latencies []float64) float64 {
	if len(latencies) >= 2000 {
		return QuantileTailIndex(latencies)
	}
	k := len(latencies) / 20
	if k < 10 {
		k = 10
	}
	return HillTailIndex(latencies, k)
}

// DispersionRatio reports p99.9/median — the workload-dispersion
// measure used to rank workloads in Fig. 1 (right). The p99.9 (rather
// than p99) captures bimodal distributions whose long mode is rarer
// than 1%, like the paper's A1/A2.
func DispersionRatio(h *Histogram) float64 {
	med := h.Median()
	if med == 0 {
		return 0
	}
	return float64(h.P999()) / float64(med)
}
