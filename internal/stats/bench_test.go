package stats

import "testing"

// BenchmarkHistogramRecord measures the per-completion accounting cost.
func BenchmarkHistogramRecord(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i%1000000 + 1))
	}
}

// BenchmarkHistogramQuantile measures percentile queries over a loaded
// histogram.
func BenchmarkHistogramQuantile(b *testing.B) {
	h := NewHistogram()
	for i := int64(0); i < 1000000; i++ {
		h.Record(i % 777777)
	}
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		sink ^= h.Quantile(0.99)
	}
	_ = sink
}

// BenchmarkHillTailIndex measures the controller's tail fit on a
// typical window.
func BenchmarkHillTailIndex(b *testing.B) {
	samples := make([]float64, 5000)
	for i := range samples {
		samples[i] = float64(i%997 + 1)
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += HillTailIndex(samples, 250)
	}
	_ = sink
}

// BenchmarkQuantileTailIndex measures the robust classifier used by
// Algorithm 1 on large windows.
func BenchmarkQuantileTailIndex(b *testing.B) {
	samples := make([]float64, 5000)
	for i := range samples {
		samples[i] = float64(i%997 + 1)
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += QuantileTailIndex(samples)
	}
	_ = sink
}
