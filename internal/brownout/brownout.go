// Package brownout is the class-aware graceful-degradation control
// plane: a hysteresis state machine that watches smoothed load signals
// and tells admission control how hard to push back. It encodes the
// paper's LC/BE contract (§VI colocation: protect latency-critical
// tails, let best-effort soak spare cycles) as three modes:
//
//   - NORMAL: everyone is admitted subject to the ordinary caps.
//   - BROWNOUT: best-effort (BE) work is fast-rejected and evicted;
//     latency-critical (LC) work keeps flowing.
//   - SHED: sustained overload that BE rejection alone cannot absorb —
//     everything is fast-rejected until pressure drains.
//
// The controller is deliberately boring: an asymmetric EWMA (fast
// attack, slow decay) over a scalar pressure signal, separate enter and
// exit thresholds per boundary (hysteresis), and a minimum dwell time
// in every state. All three mechanisms exist to prevent flapping — an
// admission gate that oscillates per-request is worse than no gate,
// because clients see an incoherent mix of accepts and rejects and
// their retries re-synchronize into new bursts.
//
// Time is always passed in explicitly, so tests drive the machine in
// virtual time and the live server drives it from a sampling ticker.
package brownout

import (
	"fmt"
	"sync"
	"time"
)

// State is the controller's degradation mode. Ordering is meaningful:
// higher states are more degraded, and transitions move one step at a
// time (NORMAL ↔ BROWNOUT ↔ SHED, never NORMAL ↔ SHED directly).
type State int32

const (
	// Normal admits everything subject to the ordinary caps.
	Normal State = iota
	// Brownout fast-rejects and evicts BE work; LC keeps flowing.
	Brownout
	// Shed fast-rejects everything until pressure drains.
	Shed

	// NumStates is the number of states (for per-state counter arrays).
	NumStates = 3
)

func (s State) String() string {
	switch s {
	case Normal:
		return "normal"
	case Brownout:
		return "brownout"
	case Shed:
		return "shed"
	default:
		return fmt.Sprintf("State(%d)", int32(s))
	}
}

// Config parameterizes a Controller. The zero value gets defaults from
// New; invalid combinations (exit ≥ enter, thresholds out of order)
// panic there, because a mis-ordered hysteresis band silently degrades
// to a flapping bang-bang controller.
type Config struct {
	// EnterBrownout/ExitBrownout bound the NORMAL↔BROWNOUT hysteresis
	// band on the smoothed pressure signal (defaults 0.9 and 0.5).
	// Pressure is dimensionless: 1.0 means "offered load equals the
	// configured capacity".
	EnterBrownout, ExitBrownout float64
	// EnterShed/ExitShed bound the BROWNOUT↔SHED band (defaults 3.0 and
	// 1.5): overload so deep that rejecting BE alone cannot drain it.
	EnterShed, ExitShed float64
	// AlphaRise/AlphaFall are the EWMA smoothing factors applied when
	// the raw signal is above/below the current estimate (defaults 0.5
	// and 0.1). Fast attack enters protection promptly; slow decay keeps
	// it engaged across the gaps inside a correlated burst.
	AlphaRise, AlphaFall float64
	// MinDwell is the minimum time the controller holds a state before
	// any transition out of it (default 50ms). Combined with hysteresis
	// it bounds the worst-case mode-switch rate.
	MinDwell time.Duration
	// DegradedFloor/TerminalFloor are raw-signal floors applied while
	// the runtime watchdog reports Degraded()/Terminal(): a wedged timer
	// service means quanta are only enforced cooperatively, so the
	// server preemptively sheds BE even if occupancy looks fine
	// (defaults: EnterBrownout for both — degraded delivery pushes the
	// controller to BROWNOUT but not to SHED on its own).
	DegradedFloor, TerminalFloor float64
}

func (c Config) withDefaults() Config {
	if c.EnterBrownout == 0 {
		c.EnterBrownout = 0.9
	}
	if c.ExitBrownout == 0 {
		c.ExitBrownout = 0.5
	}
	if c.EnterShed == 0 {
		c.EnterShed = 3.0
	}
	if c.ExitShed == 0 {
		c.ExitShed = 1.5
	}
	if c.AlphaRise == 0 {
		c.AlphaRise = 0.5
	}
	if c.AlphaFall == 0 {
		c.AlphaFall = 0.1
	}
	if c.MinDwell == 0 {
		c.MinDwell = 50 * time.Millisecond
	}
	if c.DegradedFloor == 0 {
		c.DegradedFloor = c.EnterBrownout
	}
	if c.TerminalFloor == 0 {
		c.TerminalFloor = c.EnterBrownout
	}
	return c
}

func (c Config) validate() {
	if !(c.ExitBrownout < c.EnterBrownout) {
		panic(fmt.Sprintf("brownout: ExitBrownout %v must be < EnterBrownout %v", c.ExitBrownout, c.EnterBrownout))
	}
	if !(c.ExitShed < c.EnterShed) {
		panic(fmt.Sprintf("brownout: ExitShed %v must be < EnterShed %v", c.ExitShed, c.EnterShed))
	}
	if !(c.EnterBrownout <= c.EnterShed) {
		panic(fmt.Sprintf("brownout: EnterBrownout %v must be ≤ EnterShed %v", c.EnterBrownout, c.EnterShed))
	}
	for _, a := range []float64{c.AlphaRise, c.AlphaFall} {
		if a <= 0 || a > 1 {
			panic(fmt.Sprintf("brownout: alpha %v outside (0,1]", a))
		}
	}
	if c.MinDwell < 0 {
		panic("brownout: negative MinDwell")
	}
}

// Signal is one raw observation of system pressure. The scalar the
// controller smooths is the max of the components: any one saturated
// resource is enough to warrant protection.
type Signal struct {
	// Occupancy is offered load against the admission cap:
	// (inflight + recent fast-rejects) / capacity. It exceeds 1.0 under
	// overload — rejected work is still pressure, which is what keeps
	// the controller engaged while the BE gate is actively rejecting.
	Occupancy float64
	// DelayRatio is queue delay against its target: oldest queued
	// arrival's wait / target delay.
	DelayRatio float64
	// Degraded/Terminal mirror the runtime watchdog; they apply the
	// configured raw-signal floors.
	Degraded, Terminal bool
}

func (s Signal) raw(cfg Config) float64 {
	r := s.Occupancy
	if s.DelayRatio > r {
		r = s.DelayRatio
	}
	if s.Degraded && cfg.DegradedFloor > r {
		r = cfg.DegradedFloor
	}
	if s.Terminal && cfg.TerminalFloor > r {
		r = cfg.TerminalFloor
	}
	return r
}

// Transition records one state change.
type Transition struct {
	From, To State
	At       time.Time
	// Load is the smoothed pressure at the moment of the transition.
	Load float64
}

// Controller is the hysteresis state machine. Safe for concurrent use;
// Observe is the only mutating call.
type Controller struct {
	mu     sync.Mutex
	cfg    Config
	state  State
	load   float64
	primed bool
	since  time.Time // when the current state was entered
	hist   []Transition
}

// New builds a controller in Normal with cfg (zero fields defaulted).
func New(cfg Config) *Controller {
	cfg = cfg.withDefaults()
	cfg.validate()
	return &Controller{cfg: cfg}
}

// Config reports the controller's effective (defaulted) configuration.
func (c *Controller) Config() Config {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cfg
}

// Observe folds one signal sample into the smoothed load at time now
// and returns the (possibly updated) state. Transitions move at most
// one step per call and never before the current state has been held
// MinDwell; hysteresis means a transition only reverses after the
// signal crosses the opposite edge of the band.
func (c *Controller) Observe(now time.Time, sig Signal) State {
	c.mu.Lock()
	defer c.mu.Unlock()
	raw := sig.raw(c.cfg)
	if !c.primed {
		c.primed = true
		c.load = raw
		c.since = now
	} else {
		alpha := c.cfg.AlphaFall
		if raw > c.load {
			alpha = c.cfg.AlphaRise
		}
		c.load += alpha * (raw - c.load)
	}
	if now.Sub(c.since) < c.cfg.MinDwell {
		return c.state
	}
	next := c.state
	switch c.state {
	case Normal:
		if c.load >= c.cfg.EnterBrownout {
			next = Brownout
		}
	case Brownout:
		if c.load >= c.cfg.EnterShed {
			next = Shed
		} else if c.load <= c.cfg.ExitBrownout {
			next = Normal
		}
	case Shed:
		if c.load <= c.cfg.ExitShed {
			next = Brownout
		}
	}
	if next != c.state {
		c.hist = append(c.hist, Transition{From: c.state, To: next, At: now, Load: c.load})
		c.state = next
		c.since = now
	}
	return c.state
}

// State snapshots the current state.
func (c *Controller) State() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// Load snapshots the smoothed pressure estimate.
func (c *Controller) Load() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.load
}

// History returns a copy of every transition so far, in order. Tests
// use it to assert dwell times and the absence of flapping.
func (c *Controller) History() []Transition {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Transition(nil), c.hist...)
}

// Transitions reports how many state changes have occurred.
func (c *Controller) Transitions() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.hist)
}
