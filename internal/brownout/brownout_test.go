package brownout

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// step drives one Observe with a bare occupancy signal.
func step(c *Controller, at time.Time, occ float64) State {
	return c.Observe(at, Signal{Occupancy: occ})
}

func TestDefaultsAndValidation(t *testing.T) {
	c := New(Config{})
	cfg := c.Config()
	if !(cfg.ExitBrownout < cfg.EnterBrownout && cfg.ExitShed < cfg.EnterShed) {
		t.Fatalf("defaulted config is not a hysteresis band: %+v", cfg)
	}
	if c.State() != Normal {
		t.Fatalf("fresh controller in %v, want normal", c.State())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("inverted band accepted")
		}
	}()
	New(Config{EnterBrownout: 0.5, ExitBrownout: 0.9})
}

func TestHysteresisBandHoldsState(t *testing.T) {
	// A raw signal oscillating strictly inside the hysteresis band must
	// never cause a transition, no matter how long it runs.
	c := New(Config{EnterBrownout: 0.9, ExitBrownout: 0.5, MinDwell: time.Millisecond,
		AlphaRise: 1, AlphaFall: 1}) // no smoothing: the band alone must hold
	t0 := time.Unix(0, 0)
	for i := 0; i < 1000; i++ {
		occ := 0.55
		if i%2 == 0 {
			occ = 0.85
		}
		if got := step(c, t0.Add(time.Duration(i)*10*time.Millisecond), occ); got != Normal {
			t.Fatalf("step %d: state %v inside the band", i, got)
		}
	}
	if c.Transitions() != 0 {
		t.Fatalf("%d transitions inside the hysteresis band", c.Transitions())
	}
}

func TestDwellBlocksEarlyTransition(t *testing.T) {
	c := New(Config{MinDwell: 100 * time.Millisecond, AlphaRise: 1, AlphaFall: 1})
	t0 := time.Unix(0, 0)
	// Saturated from the first sample: the transition must still wait
	// out the dwell in Normal.
	if got := step(c, t0, 5); got != Normal {
		t.Fatalf("transition before dwell: %v", got)
	}
	if got := step(c, t0.Add(50*time.Millisecond), 5); got != Normal {
		t.Fatalf("transition at half dwell: %v", got)
	}
	if got := step(c, t0.Add(100*time.Millisecond), 5); got != Brownout {
		t.Fatalf("no transition after dwell: %v", got)
	}
	// One step per observation: even saturated far past EnterShed, the
	// machine passes through Brownout and dwells there first.
	if got := step(c, t0.Add(150*time.Millisecond), 5); got != Brownout {
		t.Fatalf("skipped brownout dwell: %v", got)
	}
	if got := step(c, t0.Add(200*time.Millisecond), 5); got != Shed {
		t.Fatalf("no escalation to shed: %v", got)
	}
}

func TestWatchdogFloorsForceBrownout(t *testing.T) {
	c := New(Config{MinDwell: time.Millisecond, AlphaRise: 1, AlphaFall: 1})
	t0 := time.Unix(0, 0)
	c.Observe(t0, Signal{Occupancy: 0})
	got := c.Observe(t0.Add(10*time.Millisecond), Signal{Occupancy: 0, Degraded: true})
	if got != Brownout {
		t.Fatalf("degraded watchdog did not force brownout: %v (load %.2f)", got, c.Load())
	}
	// Terminal alone must not escalate past brownout by default.
	got = c.Observe(t0.Add(20*time.Millisecond), Signal{Occupancy: 0, Terminal: true})
	if got != Brownout {
		t.Fatalf("terminal watchdog state %v, want brownout", got)
	}
}

// TestMonotoneRampNeverFlaps is the seeded property test: for any
// monotone load ramp up then down, the state sequence is monotone in
// each direction, there is exactly one transition per threshold
// crossing, and every state is held at least MinDwell.
func TestMonotoneRampNeverFlaps(t *testing.T) {
	rng := sim.NewRNG(0xb10)
	for trial := 0; trial < 50; trial++ {
		cfg := Config{
			EnterBrownout: 0.8 + 0.2*rng.Float64(),  // [0.8, 1.0)
			ExitBrownout:  0.3 + 0.3*rng.Float64(),  // [0.3, 0.6)
			EnterShed:     2.0 + 2.0*rng.Float64(),  // [2.0, 4.0)
			ExitShed:      1.1 + 0.5*rng.Float64(),  // [1.1, 1.6)
			AlphaRise:     0.2 + 0.8*rng.Float64(),  // (0.2, 1.0)
			AlphaFall:     0.05 + 0.5*rng.Float64(), // (0.05, 0.55)
			MinDwell:      time.Duration(1+rng.Intn(80)) * time.Millisecond,
		}
		peak := 0.5 + 5*rng.Float64() // may or may not cross either threshold
		rampSteps := 50 + rng.Intn(200)
		c := New(cfg)

		const dt = 2 * time.Millisecond
		holdSteps := 400 + int(cfg.MinDwell/dt) // long enough to settle EWMA + dwell
		t0 := time.Unix(0, 0)
		now := t0
		var states []State
		var times []time.Time
		observe := func(raw float64) {
			st := step(c, now, raw)
			states = append(states, st)
			times = append(times, now)
			now = now.Add(dt)
		}
		// Monotone up, hold at peak, monotone down, hold at zero.
		for i := 0; i <= rampSteps; i++ {
			observe(peak * float64(i) / float64(rampSteps))
		}
		for i := 0; i < holdSteps; i++ {
			observe(peak)
		}
		upEnd := len(states)
		for i := rampSteps; i >= 0; i-- {
			observe(peak * float64(i) / float64(rampSteps))
		}
		for i := 0; i < holdSteps; i++ {
			observe(0)
		}

		// Monotone state sequence in each phase: never a downward move
		// while the ramp rises, never upward while it falls.
		for i := 1; i < upEnd; i++ {
			if states[i] < states[i-1] {
				t.Fatalf("trial %d: state fell %v→%v during rising ramp (cfg %+v)",
					trial, states[i-1], states[i], cfg)
			}
		}
		for i := upEnd + 1; i < len(states); i++ {
			if states[i] > states[i-1] {
				t.Fatalf("trial %d: state rose %v→%v during falling ramp (cfg %+v)",
					trial, states[i-1], states[i], cfg)
			}
		}

		// Exactly one transition per threshold crossing: the held peak
		// decides how deep the machine goes, and the return to zero
		// retraces it. (The EWMA converges to the held raw value, so
		// crossing is decided by peak against the enter thresholds.)
		wantUp := 0
		if peak >= cfg.EnterBrownout {
			wantUp++
		}
		if peak >= cfg.EnterShed {
			wantUp++
		}
		hist := c.History()
		if len(hist) != 2*wantUp {
			t.Fatalf("trial %d: %d transitions, want %d (peak %.2f, cfg %+v, hist %+v)",
				trial, len(hist), 2*wantUp, peak, cfg, hist)
		}
		if states[len(states)-1] != Normal {
			t.Fatalf("trial %d: final state %v, want normal", trial, states[len(states)-1])
		}

		// Dwell respected between every pair of consecutive transitions
		// and before the first one.
		prev := t0
		for i, tr := range hist {
			if d := tr.At.Sub(prev); d < cfg.MinDwell {
				t.Fatalf("trial %d: transition %d after %v < dwell %v (hist %+v)",
					trial, i, d, cfg.MinDwell, hist)
			}
			prev = tr.At
		}
		// And the transitions are single-step moves retracing each other.
		for i, tr := range hist {
			if diff := int32(tr.To) - int32(tr.From); diff != 1 && diff != -1 {
				t.Fatalf("trial %d: transition %d skips states: %+v", trial, i, tr)
			}
		}
	}
}
