package netstack

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/sched"
	"repro/internal/sim"
)

type netEnv struct {
	eng    *sim.Engine
	m      *hw.Machine
	nic    *NIC
	client *Client
	got    []*sched.Request
}

func newNetEnv(t *testing.T, path PathKind, queues, ringCap int) *netEnv {
	t.Helper()
	e := &netEnv{eng: sim.NewEngine()}
	rng := sim.NewRNG(13)
	e.m = hw.NewMachine(e.eng, 1, hw.DefaultCosts(), rng)
	e.nic = NewNIC(e.eng, rng.Stream(1), DefaultCosts(), path, queues, ringCap,
		func(r *sched.Request) { e.got = append(e.got, r) })
	e.client = NewClient(e.eng, rng.Stream(2), DefaultCosts(), e.nic)
	return e
}

func TestKernelTCPDelivery(t *testing.T) {
	e := newNetEnv(t, KernelTCP, 4, 1024)
	for i := 0; i < 100; i++ {
		e.client.Send(sched.NewRequest(uint64(i), sched.ClassLC, e.eng.Now(), sim.Microsecond))
	}
	e.eng.RunAll()
	if len(e.got) != 100 || e.nic.Delivered != 100 {
		t.Fatalf("delivered %d", len(e.got))
	}
	if e.client.Sent != 100 {
		t.Fatalf("Sent = %d", e.client.Sent)
	}
}

func TestBypassDelivery(t *testing.T) {
	e := newNetEnv(t, Bypass, 4, 1024)
	for i := 0; i < 100; i++ {
		e.client.Send(sched.NewRequest(uint64(i), sched.ClassLC, e.eng.Now(), sim.Microsecond))
	}
	e.eng.RunAll()
	if len(e.got) != 100 {
		t.Fatalf("delivered %d", len(e.got))
	}
}

func TestBypassIsFasterThanKernelTCP(t *testing.T) {
	// Measure mean send→delivery latency through the sink per path.
	measure := func(path PathKind) float64 {
		eng := sim.NewEngine()
		rng := sim.NewRNG(13)
		m := hw.NewMachine(eng, 1, hw.DefaultCosts(), rng)
		var sum sim.Time
		var n int
		var sent []sim.Time
		nic := NewNIC(eng, rng.Stream(1), DefaultCosts(), path, 1, 1024, func(r *sched.Request) {
			sum += eng.Now() - sent[r.ID]
			n++
		})
		client := NewClient(eng, rng.Stream(2), DefaultCosts(), nic)
		sent = make([]sim.Time, 200)
		for i := 0; i < 200; i++ {
			i := i
			eng.At(sim.Time(i)*50*sim.Microsecond, func() {
				sent[i] = eng.Now()
				client.Send(sched.NewRequest(uint64(i), sched.ClassLC, eng.Now(), 1))
			})
		}
		eng.RunAll()
		_ = m
		return float64(sum) / float64(n)
	}
	tcp := measure(KernelTCP)
	byp := measure(Bypass)
	// Both include ~5µs wire; the server-side gap is several µs.
	if byp >= tcp {
		t.Fatalf("bypass %.0fns not faster than kernel TCP %.0fns", byp, tcp)
	}
	if tcp-byp < 2000 {
		t.Fatalf("receive-path gap = %.0fns, want several µs", tcp-byp)
	}
}

func TestRSSSpreadsAcrossQueues(t *testing.T) {
	e := newNetEnv(t, Bypass, 8, 1024)
	counts := make(map[int]int)
	// Count per-ring occupancy by hashing known IDs.
	for i := 0; i < 8000; i++ {
		counts[int(rssHash(uint64(i))%8)]++
	}
	for q := 0; q < 8; q++ {
		if counts[q] < 600 || counts[q] > 1400 {
			t.Fatalf("RSS imbalance: queue %d got %d of 8000", q, counts[q])
		}
	}
	_ = e
}

func TestRingOverflowDrops(t *testing.T) {
	e := newNetEnv(t, KernelTCP, 1, 8)
	// Burst 100 into an 8-deep ring before any drain event runs.
	for i := 0; i < 100; i++ {
		e.nic.Inject(sched.NewRequest(uint64(i), sched.ClassLC, 0, 1))
	}
	if e.nic.Dropped == 0 {
		t.Fatal("no drops on overflowed ring")
	}
	e.eng.RunAll()
	if e.nic.Delivered+e.nic.Dropped != 100 {
		t.Fatalf("delivered %d + dropped %d != 100", e.nic.Delivered, e.nic.Dropped)
	}
}

func TestBypassBatchDrain(t *testing.T) {
	// A burst injected together must drain within one or two poll
	// batches, amortizing the poll cost.
	e := newNetEnv(t, Bypass, 1, 1024)
	for i := 0; i < 32; i++ {
		e.nic.Inject(sched.NewRequest(uint64(i), sched.ClassLC, 0, 1))
	}
	e.eng.RunAll()
	if len(e.got) != 32 {
		t.Fatalf("delivered %d", len(e.got))
	}
	costs := DefaultCosts()
	budget := costs.PollBatch*3 + 33*costs.PollPerPacket
	if e.eng.Now() > budget {
		t.Fatalf("burst drained at %v, want <= %v", e.eng.Now(), budget)
	}
}

func TestNICValidation(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(1)
	for _, tc := range []struct {
		q, cap int
		sink   func(*sched.Request)
	}{
		{0, 8, func(*sched.Request) {}},
		{1, 0, func(*sched.Request) {}},
		{1, 8, nil},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewNIC(%d,%d) did not panic", tc.q, tc.cap)
				}
			}()
			NewNIC(eng, rng, DefaultCosts(), Bypass, tc.q, tc.cap, tc.sink)
		}()
	}
}

func TestPathString(t *testing.T) {
	if KernelTCP.String() == "" || Bypass.String() == "" || PathKind(9).String() == "" {
		t.Fatal("path names broken")
	}
}
