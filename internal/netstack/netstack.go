// Package netstack models the network front-end of the paper's
// deployments (§V: "the network stack is DPDK or kernel TCP"): client
// machines, wire latency, a NIC with RSS receive queues, and the two
// receive paths a server can use —
//
//   - kernel TCP: per-packet syscall + protocol processing costs,
//     interrupt-driven wakeups of the network thread; and
//   - kernel-bypass (DPDK-style): polled RX rings with per-batch
//     amortized costs and no kernel transitions.
//
// The dispatcher (network thread) of a scheduling system sits behind a
// Receiver; experiments use the network layer to study how much of the
// end-to-end tail is scheduling versus network, and to check that
// LibPreemptible's wins survive a realistic front-end.
package netstack

import (
	"repro/internal/hw"
	"repro/internal/sched"
	"repro/internal/sim"
)

// PathKind selects the receive path.
type PathKind int

const (
	// KernelTCP is the interrupt-driven kernel socket path.
	KernelTCP PathKind = iota
	// Bypass is the DPDK-style polled path.
	Bypass
)

func (p PathKind) String() string {
	switch p {
	case KernelTCP:
		return "kernel-tcp"
	case Bypass:
		return "dpdk-bypass"
	default:
		return "unknown"
	}
}

// Costs parameterize the network model.
type Costs struct {
	// WireMean/WireMin is the one-way client→NIC latency.
	WireMean, WireMin sim.Time
	// TCPPerPacket is kernel protocol processing per request packet
	// (softirq + socket + copy).
	TCPPerPacket sim.Time
	// TCPWakeup is the interrupt + wakeup latency when the network
	// thread was blocked in epoll.
	TCPWakeup sim.Time
	// SyscallRecv is the recv syscall cost paid by the network thread
	// per request on the kernel path.
	SyscallRecv sim.Time
	// PollBatch is the DPDK rx_burst poll period: arrivals wait for the
	// next poll; per-request cost on the bypass path is PollPerPacket.
	PollBatch     sim.Time
	PollPerPacket sim.Time
}

// DefaultCosts returns a calibration consistent with the µs-scale
// literature (kernel receive path ~5 µs per small request; bypass
// ~0.3 µs with sub-µs poll batching).
func DefaultCosts() Costs {
	return Costs{
		WireMean:      5 * sim.Microsecond,
		WireMin:       2 * sim.Microsecond,
		TCPPerPacket:  2200 * sim.Nanosecond,
		TCPWakeup:     1800 * sim.Nanosecond,
		SyscallRecv:   900 * sim.Nanosecond,
		PollBatch:     500 * sim.Nanosecond,
		PollPerPacket: 120 * sim.Nanosecond,
	}
}

// NIC is a receive NIC with RSS queues. Requests entering the NIC are
// hashed to a queue (by request ID, standing in for the 5-tuple), then
// delivered to the server through the configured path.
type NIC struct {
	eng   *sim.Engine
	rng   *sim.RNG
	costs Costs
	path  PathKind
	rings []rxRing
	sink  func(*sched.Request)

	// Delivered counts requests handed to the server; Dropped counts
	// ring overflows.
	Delivered, Dropped uint64
	// ringCap bounds each RX ring.
	ringCap int
}

type rxRing struct {
	q       []*sched.Request
	head    int
	polling bool
}

// NewNIC builds a NIC with nQueues RSS rings feeding sink.
func NewNIC(eng *sim.Engine, rng *sim.RNG, costs Costs, path PathKind, nQueues, ringCap int, sink func(*sched.Request)) *NIC {
	if nQueues <= 0 || ringCap <= 0 {
		panic("netstack: need positive queue count and ring capacity")
	}
	if sink == nil {
		panic("netstack: nil sink")
	}
	return &NIC{
		eng:     eng,
		rng:     rng,
		costs:   costs,
		path:    path,
		rings:   make([]rxRing, nQueues),
		sink:    sink,
		ringCap: ringCap,
	}
}

// Path reports the receive path in use.
func (n *NIC) Path() PathKind { return n.path }

// Inject delivers a request from the wire into the NIC (already past
// client + wire latency — see Client).
func (n *NIC) Inject(r *sched.Request) {
	ring := &n.rings[int(rssHash(r.ID)%uint64(len(n.rings)))]
	if len(ring.q)-ring.head >= n.ringCap {
		n.Dropped++
		return
	}
	ring.q = append(ring.q, r)
	switch n.path {
	case KernelTCP:
		// Interrupt-driven: protocol processing, then wakeup + recv.
		delay := n.costs.TCPPerPacket + n.costs.TCPWakeup + n.costs.SyscallRecv
		n.eng.Schedule(delay, func() { n.drainOne(ring) })
	case Bypass:
		// Polled: the request is picked up by the next rx_burst.
		if !ring.polling {
			ring.polling = true
			n.eng.Schedule(n.costs.PollBatch, func() { n.pollBurst(ring) })
		}
	}
}

func (n *NIC) drainOne(ring *rxRing) {
	if ring.head >= len(ring.q) {
		return
	}
	r := ring.q[ring.head]
	ring.q[ring.head] = nil
	ring.head++
	n.compact(ring)
	n.Delivered++
	n.sink(r)
}

func (n *NIC) pollBurst(ring *rxRing) {
	ring.polling = false
	// One burst drains the ring, charging PollPerPacket serially.
	burst := len(ring.q) - ring.head
	if burst == 0 {
		return
	}
	var deliver func(i int)
	deliver = func(i int) {
		if i >= burst || ring.head >= len(ring.q) {
			// New arrivals during the burst get the next poll.
			if len(ring.q)-ring.head > 0 && !ring.polling {
				ring.polling = true
				n.eng.Schedule(n.costs.PollBatch, func() { n.pollBurst(ring) })
			}
			return
		}
		r := ring.q[ring.head]
		ring.q[ring.head] = nil
		ring.head++
		n.compact(ring)
		n.Delivered++
		n.sink(r)
		n.eng.Schedule(n.costs.PollPerPacket, func() { deliver(i + 1) })
	}
	deliver(0)
}

func (n *NIC) compact(ring *rxRing) {
	if ring.head > 256 && ring.head*2 >= len(ring.q) {
		ring.q = append([]*sched.Request(nil), ring.q[ring.head:]...)
		ring.head = 0
	}
}

// rssHash mixes the id (splitmix64 finalizer) as the RSS hash.
func rssHash(id uint64) uint64 {
	id ^= id >> 30
	id *= 0xbf58476d1ce4e5b9
	id ^= id >> 27
	id *= 0x94d049bb133111eb
	return id ^ (id >> 31)
}

// Client sends requests over the wire to a NIC, adding sampled wire
// latency. The request's Arrival timestamp is stamped at send time (the
// client-observed sojourn starts then), matching open-loop measurement
// practice.
type Client struct {
	eng   *sim.Engine
	rng   *sim.RNG
	costs Costs
	nic   *NIC

	// Sent counts transmitted requests.
	Sent uint64
}

// NewClient builds a client attached to nic.
func NewClient(eng *sim.Engine, rng *sim.RNG, costs Costs, nic *NIC) *Client {
	return &Client{eng: eng, rng: rng, costs: costs, nic: nic}
}

// Send transmits r: it arrives at the NIC after wire latency.
func (c *Client) Send(r *sched.Request) {
	c.Sent++
	lat := hw.SampleLatency(c.rng, c.costs.WireMean, c.costs.WireMin)
	c.eng.Schedule(lat, func() { c.nic.Inject(r) })
}
