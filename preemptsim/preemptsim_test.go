package preemptsim

import (
	"strings"
	"testing"
	"time"
)

func TestExperimentsListed(t *testing.T) {
	names := Experiments()
	if len(names) != 21 {
		t.Fatalf("%d experiments registered", len(names))
	}
}

func TestRunExperimentByID(t *testing.T) {
	tables, err := Run("table4", Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) == 0 || len(tables[0].Rows) != 6 {
		t.Fatalf("unexpected table shape: %+v", tables)
	}
	s := tables[0].String()
	if !strings.Contains(s, "uintrFd") {
		t.Fatal("rendered table missing expected row")
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("bogus", Options{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestSimulateLibPreemptible(t *testing.T) {
	res, err := Simulate(Config{System: LibPreemptible, Quantum: 10 * time.Microsecond},
		Workload{Kind: A1}, 0.7, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 || res.ThroughputRPS == 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if res.Preemptions == 0 {
		t.Fatal("heavy-tailed run with 10µs quantum had no preemptions")
	}
	if res.P99 <= res.P50 {
		t.Fatalf("percentiles inconsistent: %+v", res)
	}
}

func TestSimulateSystemsComparable(t *testing.T) {
	wl := Workload{Kind: A1}
	lp, err := Simulate(Config{System: LibPreemptible, Quantum: 5 * time.Microsecond},
		wl, 0.8, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	sj, err := Simulate(Config{System: Shinjuku, Workers: 5, Quantum: 5 * time.Microsecond},
		wl, 0.8, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := Simulate(Config{System: Libinger, Workers: 5, Quantum: 60 * time.Microsecond},
		wl, 0.8, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if lp.P99 >= sj.P99 || sj.P99 >= lib.P99 {
		t.Fatalf("p99 ordering wrong: lp=%v sj=%v lib=%v", lp.P99, sj.P99, lib.P99)
	}
}

func TestSimulateAdaptive(t *testing.T) {
	res, err := Simulate(Config{System: LibPreemptible, Adaptive: true},
		Workload{Kind: C}, 0.8, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Preemptions == 0 {
		t.Fatal("adaptive run never preempted")
	}
}

func TestSimulateCustomWorkloads(t *testing.T) {
	if _, err := Simulate(Config{}, Workload{Kind: Exponential, Mean: 10 * time.Microsecond},
		0.5, 50*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := Simulate(Config{}, Workload{Kind: BimodalKind, PShort: 0.99,
		Short: time.Microsecond, Long: 100 * time.Microsecond},
		0.5, 50*time.Millisecond); err != nil {
		t.Fatal(err)
	}
}

func TestSimulatePolicies(t *testing.T) {
	for _, pol := range []string{"cfcfs", "rr", "srpt", "edf"} {
		if _, err := Simulate(Config{Policy: pol, Quantum: 20 * time.Microsecond},
			Workload{Kind: B}, 0.5, 30*time.Millisecond); err != nil {
			t.Fatalf("policy %s: %v", pol, err)
		}
	}
}

func TestSimulateValidation(t *testing.T) {
	cases := []struct {
		cfg Config
		wl  Workload
		ld  float64
		dur time.Duration
	}{
		{Config{}, Workload{Kind: A1}, 0, time.Second},
		{Config{}, Workload{Kind: A1}, 0.5, 0},
		{Config{}, Workload{Kind: "??"}, 0.5, time.Second},
		{Config{}, Workload{Kind: Exponential}, 0.5, time.Second},
		{Config{}, Workload{Kind: BimodalKind}, 0.5, time.Second},
		{Config{System: "??"}, Workload{Kind: A1}, 0.5, time.Second},
		{Config{Policy: "??"}, Workload{Kind: A1}, 0.5, time.Second},
	}
	for i, c := range cases {
		if _, err := Simulate(c.cfg, c.wl, c.ld, c.dur); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestSimulateDeterministic(t *testing.T) {
	run := func() Result {
		r, err := Simulate(Config{Quantum: 10 * time.Microsecond, Seed: 7},
			Workload{Kind: A2}, 0.7, 50*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	if run() != run() {
		t.Fatal("nondeterministic")
	}
}
