package preemptsim_test

import (
	"fmt"
	"time"

	"repro/preemptsim"
)

// Simulate runs a custom scheduling study: pick a system, a workload
// and a load level; get latency/throughput summaries back.
func ExampleSimulate() {
	res, err := preemptsim.Simulate(
		preemptsim.Config{
			System:  preemptsim.LibPreemptible,
			Quantum: 10 * time.Microsecond,
			Seed:    1,
		},
		preemptsim.Workload{Kind: preemptsim.A1},
		0.7,                  // 70% of capacity
		100*time.Millisecond, // virtual time
	)
	if err != nil {
		panic(err)
	}
	fmt.Println("completed:", res.Completed > 0)
	fmt.Println("preempted:", res.Preemptions > 0)
	fmt.Println("p99 under 50us:", res.P99 < 50*time.Microsecond)
	// Output:
	// completed: true
	// preempted: true
	// p99 under 50us: true
}

// Run regenerates a paper artifact by id.
func ExampleRun() {
	tables, err := preemptsim.Run("table1", preemptsim.Options{Quick: true})
	if err != nil {
		panic(err)
	}
	fmt.Println("tables:", len(tables))
	fmt.Println("apps:", len(tables[0].Rows))
	// Output:
	// tables: 1
	// apps: 4
}
