package preemptsim

import (
	"strings"
	"testing"
	"time"
)

func recordA1(t *testing.T) string {
	t.Helper()
	var sb strings.Builder
	if err := RecordTrace(&sb, Workload{Kind: A1}, 0.7, 4, 100*time.Millisecond, 5); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestRecordAndReplayTrace(t *testing.T) {
	csv := recordA1(t)
	res, err := SimulateTrace(Config{Quantum: 10 * time.Microsecond}, strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 || res.Preemptions == 0 {
		t.Fatalf("empty result: %+v", res)
	}
}

func TestTraceABComparison(t *testing.T) {
	csv := recordA1(t)
	preempt, err := SimulateTrace(Config{Quantum: 10 * time.Microsecond}, strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	rtc, err := SimulateTrace(Config{Quantum: 0}, strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	// Identical arrivals: completion counts match exactly; preemption
	// wins on the heavy-tailed tail.
	if preempt.Completed != rtc.Completed {
		t.Fatalf("A/B saw different request sets: %d vs %d", preempt.Completed, rtc.Completed)
	}
	if preempt.P99 >= rtc.P99 {
		t.Fatalf("preemption p99 %v >= run-to-completion %v", preempt.P99, rtc.P99)
	}
}

func TestTraceAdaptive(t *testing.T) {
	csv := recordA1(t)
	res, err := SimulateTrace(Config{Adaptive: true}, strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if res.Preemptions == 0 {
		t.Fatal("adaptive trace run never preempted")
	}
}

func TestSimulateTraceErrors(t *testing.T) {
	if _, err := SimulateTrace(Config{}, strings.NewReader("garbage,x\n")); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := SimulateTrace(Config{}, strings.NewReader("arrival_ns,service_ns,class\n")); err == nil {
		t.Fatal("expected empty-trace error")
	}
	csv := "arrival_ns,service_ns,class\n1,1000,0\n"
	if _, err := SimulateTrace(Config{System: Shinjuku}, strings.NewReader(csv)); err == nil {
		t.Fatal("expected unsupported-system error")
	}
	if _, err := SimulateTrace(Config{Policy: "??"}, strings.NewReader(csv)); err == nil {
		t.Fatal("expected policy error")
	}
}

func TestRecordTraceValidation(t *testing.T) {
	var sb strings.Builder
	if err := RecordTrace(&sb, Workload{Kind: A1}, 0, 4, time.Second, 1); err == nil {
		t.Fatal("expected load error")
	}
	if err := RecordTrace(&sb, Workload{Kind: "??"}, 0.5, 4, time.Second, 1); err == nil {
		t.Fatal("expected workload error")
	}
}
