// Package preemptsim is the public facade over the reproduction's
// simulation substrate: it can regenerate every table and figure of the
// LibPreemptible paper (Run), and it exposes a compact API for custom
// scheduling studies (Simulate) — pick a system, a workload, a load
// level, and get latency/throughput summaries back.
//
// All runs are deterministic for a fixed seed.
package preemptsim

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/adaptive"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/libinger"
	"repro/internal/sched"
	"repro/internal/shinjuku"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Options tune experiment fidelity (see EXPERIMENTS.md for full-run
// settings).
type Options struct {
	// Quick shrinks durations/sweeps for smoke runs.
	Quick bool
	// Seed fixes all randomness (default 1).
	Seed uint64
}

// Table is one regenerated paper artifact.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Experiments lists the available experiment ids (table1, fig2, …).
func Experiments() []string { return experiments.Names() }

// Run regenerates the experiment with the given id.
func Run(id string, o Options) ([]Table, error) {
	ts, err := experiments.Run(id, experiments.Options{Quick: o.Quick, Seed: o.Seed})
	if err != nil {
		return nil, err
	}
	out := make([]Table, len(ts))
	for i, t := range ts {
		out[i] = Table{Title: t.Title, Columns: t.Columns, Rows: t.Rows}
	}
	return out, nil
}

// String renders the table as a tab-separated block with a header.
func (t Table) String() string {
	s := "## " + t.Title + "\n"
	for i, c := range t.Columns {
		if i > 0 {
			s += "\t"
		}
		s += c
	}
	s += "\n"
	for _, row := range t.Rows {
		for i, c := range row {
			if i > 0 {
				s += "\t"
			}
			s += c
		}
		s += "\n"
	}
	return s
}

// SystemKind selects the scheduling system to simulate.
type SystemKind string

const (
	// LibPreemptible: UINTR-based preemption with a dedicated timer core.
	LibPreemptible SystemKind = "libpreemptible"
	// LibPreemptibleNoUINTR: the kernel-signal ablation.
	LibPreemptibleNoUINTR SystemKind = "libpreemptible-nouintr"
	// Shinjuku: centralized dispatch + posted-IPI preemption baseline.
	Shinjuku SystemKind = "shinjuku"
	// Libinger: kernel-timer-signal preemption baseline.
	Libinger SystemKind = "libinger"
)

// WorkloadKind selects a service-time distribution.
type WorkloadKind string

const (
	// A1/A2/B/C are the paper's §V-A workloads.
	A1 WorkloadKind = "A1"
	A2 WorkloadKind = "A2"
	B  WorkloadKind = "B"
	C  WorkloadKind = "C"
	// Exponential uses Workload.Mean.
	Exponential WorkloadKind = "exponential"
	// BimodalKind uses Workload.PShort/Short/Long.
	BimodalKind WorkloadKind = "bimodal"
)

// Workload describes the request service-time distribution.
type Workload struct {
	Kind WorkloadKind
	// Mean parameterizes Exponential.
	Mean time.Duration
	// PShort/Short/Long parameterize BimodalKind.
	PShort      float64
	Short, Long time.Duration
}

func (w Workload) dists() (first, second sim.Dist, err error) {
	switch w.Kind {
	case A1:
		return workload.A1(), nil, nil
	case A2:
		return workload.A2(), nil, nil
	case B:
		return workload.B(), nil, nil
	case C:
		return workload.A1(), workload.B(), nil
	case Exponential:
		if w.Mean <= 0 {
			return nil, nil, errors.New("preemptsim: exponential workload needs Mean > 0")
		}
		return sim.Exponential{MeanV: sim.Time(w.Mean)}, nil, nil
	case BimodalKind:
		if w.PShort <= 0 || w.PShort >= 1 || w.Short <= 0 || w.Long <= 0 {
			return nil, nil, errors.New("preemptsim: bimodal workload needs PShort in (0,1) and positive modes")
		}
		return sim.Bimodal{PShort: w.PShort, Short: sim.Time(w.Short), Long: sim.Time(w.Long)}, nil, nil
	default:
		return nil, nil, fmt.Errorf("preemptsim: unknown workload kind %q", w.Kind)
	}
}

// Config describes the simulated system for Simulate.
type Config struct {
	System SystemKind
	// Workers is the worker-core count (default 4).
	Workers int
	// Quantum is the preemption time slice (0 = run to completion; for
	// Adaptive systems it is the controller's starting point).
	Quantum time.Duration
	// Adaptive enables the Algorithm 1 quantum controller
	// (LibPreemptible only).
	Adaptive bool
	// Policy picks the queue discipline: "cfcfs" (default), "rr",
	// "srpt", "edf". LibPreemptible variants only.
	Policy string
	// Seed fixes the run (default 1).
	Seed uint64
}

// Result summarizes a Simulate run.
type Result struct {
	Completed     uint64
	ThroughputRPS float64
	Mean          time.Duration
	P50, P99      time.Duration
	P999          time.Duration
	Preemptions   uint64
	Utilization   float64
}

func policyFor(name string) (sched.Policy, error) {
	switch name {
	case "", "cfcfs":
		return sched.NewFCFSPreempt(), nil
	case "rr":
		return sched.NewRoundRobin(), nil
	case "srpt":
		return sched.NewSRPT(), nil
	case "edf":
		return sched.NewEDF(), nil
	default:
		return nil, fmt.Errorf("preemptsim: unknown policy %q", name)
	}
}

// Simulate runs the configured system against the workload at the given
// fraction of its aggregate service capacity for a virtual duration.
func Simulate(cfg Config, wl Workload, load float64, duration time.Duration) (Result, error) {
	if load <= 0 {
		return Result{}, errors.New("preemptsim: load must be positive")
	}
	if duration <= 0 {
		return Result{}, errors.New("preemptsim: duration must be positive")
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = 4
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	first, second, err := wl.dists()
	if err != nil {
		return Result{}, err
	}
	dur := sim.Time(duration)
	phases := []workload.Phase{{Service: first, Rate: workload.RateForLoad(load, workers, first.Mean())}}
	if second != nil {
		phases[0].Duration = dur / 2
		phases = append(phases, workload.Phase{
			Service: second, Rate: workload.RateForLoad(load, workers, second.Mean())})
	}
	mean := first.Mean()
	if second != nil {
		mean = (first.Mean() + second.Mean()) / 2
	}

	switch cfg.System {
	case "", LibPreemptible, LibPreemptibleNoUINTR:
		pol, err := policyFor(cfg.Policy)
		if err != nil {
			return Result{}, err
		}
		mech := core.MechUINTR
		if cfg.System == LibPreemptibleNoUINTR {
			mech = core.MechKernelSignal
		}
		if cfg.Quantum == 0 && !cfg.Adaptive {
			mech = core.MechNone
		}
		s := core.New(core.Config{
			Workers: workers,
			Quantum: sim.Time(cfg.Quantum),
			Policy:  pol,
			Mech:    mech,
			Seed:    seed,
		})
		if cfg.Adaptive {
			acfg := adaptive.DefaultConfig(workload.RateForLoad(1.0, workers, mean))
			acfg.Period = dur / 40
			start := sim.Time(cfg.Quantum)
			if start == 0 {
				start = 20 * sim.Microsecond
			}
			adaptive.Attach(s, adaptive.NewController(acfg, start))
		}
		drive(s.Eng, s.Submit, phases, dur, seed)
		return Result{
			Completed:     s.Metrics.Completed,
			ThroughputRPS: s.Throughput(),
			Mean:          time.Duration(s.Metrics.Latency.Mean()),
			P50:           time.Duration(s.Metrics.Latency.Median()),
			P99:           time.Duration(s.Metrics.Latency.P99()),
			P999:          time.Duration(s.Metrics.Latency.P999()),
			Preemptions:   s.Metrics.Preemptions,
			Utilization:   s.WorkerUtilization(),
		}, nil
	case Shinjuku:
		s := shinjuku.New(shinjuku.Config{Workers: workers, Quantum: sim.Time(cfg.Quantum), Seed: seed})
		drive(s.Eng, s.Submit, phases, dur, seed)
		return Result{
			Completed:     s.Metrics.Completed,
			ThroughputRPS: s.Throughput(),
			Mean:          time.Duration(s.Metrics.Latency.Mean()),
			P50:           time.Duration(s.Metrics.Latency.Median()),
			P99:           time.Duration(s.Metrics.Latency.P99()),
			P999:          time.Duration(s.Metrics.Latency.P999()),
			Preemptions:   s.Metrics.Preemptions,
		}, nil
	case Libinger:
		s := libinger.New(libinger.Config{Workers: workers, Quantum: sim.Time(cfg.Quantum), Seed: seed})
		drive(s.Eng, s.Submit, phases, dur, seed)
		return Result{
			Completed:     s.Metrics.Completed,
			ThroughputRPS: s.Throughput(),
			Mean:          time.Duration(s.Metrics.Latency.Mean()),
			P50:           time.Duration(s.Metrics.Latency.Median()),
			P99:           time.Duration(s.Metrics.Latency.P99()),
			P999:          time.Duration(s.Metrics.Latency.P999()),
			Preemptions:   s.Metrics.Preemptions,
		}, nil
	default:
		return Result{}, fmt.Errorf("preemptsim: unknown system %q", cfg.System)
	}
}

func drive(eng *sim.Engine, submit func(*sched.Request), phases []workload.Phase, dur sim.Time, seed uint64) {
	gen := workload.NewOpenLoop(eng, sim.NewRNG(seed+0xabcdef), sched.ClassLC, phases, submit)
	gen.Start()
	eng.Run(dur)
	gen.Stop()
	eng.RunAll()
}
