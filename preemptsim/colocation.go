package preemptsim

import (
	"errors"
	"time"

	"repro/internal/adaptive"
	"repro/internal/bejob"
	"repro/internal/core"
	"repro/internal/mica"
	"repro/internal/sched"
	"repro/internal/sim"
)

// ColocationConfig describes a §V-C style colocation study: a
// latency-critical MICA-like KV job sharing workers with a best-effort
// compression job under FCFS-with-preemption.
type ColocationConfig struct {
	// Workers is the worker-core count (default 1, the paper's setup).
	Workers int
	// QPS is the total arrival rate across both jobs.
	QPS float64
	// BEFraction is the best-effort share of arrivals (default 0.02).
	BEFraction float64
	// Quantum is the static preemption interval (0 = run to
	// completion, the LC-Base configuration).
	Quantum time.Duration
	// Dynamic, when non-nil, replaces the static quantum with the
	// QPS-driven interval controller of §V-C policy #2.
	Dynamic *DynamicInterval
	// Seed fixes the run (default 1).
	Seed uint64
}

// DynamicInterval mirrors adaptive.QPSInterval for the public API.
type DynamicInterval struct {
	MinInterval, MaxInterval time.Duration
	LowQPS, HighQPS          float64
	// MonitorPeriod is the QPS sampling cadence (default duration/50).
	MonitorPeriod time.Duration
}

// ColocationResult reports per-class latency summaries.
type ColocationResult struct {
	LCCompleted, BECompleted uint64
	LCMean, LCP50, LCP99     time.Duration
	BEMean, BEP50, BEP99     time.Duration
	Preemptions              uint64
}

// SimulateColocation runs the colocation scenario for a virtual
// duration and reports per-class latency statistics.
func SimulateColocation(cfg ColocationConfig, duration time.Duration) (ColocationResult, error) {
	if cfg.QPS <= 0 {
		return ColocationResult{}, errors.New("preemptsim: QPS must be positive")
	}
	if duration <= 0 {
		return ColocationResult{}, errors.New("preemptsim: duration must be positive")
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = 1
	}
	beFrac := cfg.BEFraction
	if beFrac == 0 {
		beFrac = 0.02
	}
	if beFrac < 0 || beFrac >= 1 {
		return ColocationResult{}, errors.New("preemptsim: BEFraction must be in [0, 1)")
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	dur := sim.Time(duration)

	mech := core.MechUINTR
	if cfg.Quantum == 0 && cfg.Dynamic == nil {
		mech = core.MechNone
	}
	s := core.New(core.Config{
		Workers: workers,
		Quantum: sim.Time(cfg.Quantum),
		Policy:  sched.NewFCFSPreempt(),
		Mech:    mech,
		Seed:    seed,
	})
	if d := cfg.Dynamic; d != nil {
		period := sim.Time(d.MonitorPeriod)
		if period == 0 {
			period = dur / 50
		}
		adaptive.AttachQPS(s, adaptive.QPSInterval{
			MinInterval: sim.Time(d.MinInterval),
			MaxInterval: sim.Time(d.MaxInterval),
			LowQPS:      d.LowQPS,
			HighQPS:     d.HighQPS,
		}, period)
	}

	lcGen := mica.NewGenerator(mica.DefaultWorkloadConfig(), sim.NewRNG(seed+1))
	beGen := bejob.NewGenerator(bejob.DefaultConfig(), sim.NewRNG(seed+2))
	rng := sim.NewRNG(seed + 3)
	var loop func()
	loop = func() {
		gap := sim.Time(rng.Exp(float64(sim.Second) / cfg.QPS))
		if gap < 1 {
			gap = 1
		}
		s.Eng.Schedule(gap, func() {
			now := s.Eng.Now()
			if now >= dur {
				return
			}
			if rng.Bernoulli(beFrac) {
				s.Submit(beGen.NextRequest(now))
			} else {
				s.Submit(lcGen.NextRequest(now))
			}
			loop()
		})
	}
	loop()
	s.Eng.Run(dur)
	s.Eng.RunAll()

	return ColocationResult{
		LCCompleted: s.Metrics.LatencyLC.Count(),
		BECompleted: s.Metrics.LatencyBE.Count(),
		LCMean:      time.Duration(s.Metrics.LatencyLC.Mean()),
		LCP50:       time.Duration(s.Metrics.LatencyLC.Median()),
		LCP99:       time.Duration(s.Metrics.LatencyLC.P99()),
		BEMean:      time.Duration(s.Metrics.LatencyBE.Mean()),
		BEP50:       time.Duration(s.Metrics.LatencyBE.Median()),
		BEP99:       time.Duration(s.Metrics.LatencyBE.P99()),
		Preemptions: s.Metrics.Preemptions,
	}, nil
}
