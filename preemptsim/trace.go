package preemptsim

import (
	"errors"
	"io"
	"time"

	"repro/internal/adaptive"
	"repro/internal/core"
	"repro/internal/replay"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// SimulateTrace replays a recorded request trace (CSV as written by
// RecordTrace: "arrival_ns,service_ns,class" lines) into a
// LibPreemptible system and reports the same summary as Simulate.
// Replaying one trace into differently-configured systems gives
// variance-free A/B comparisons. Only the LibPreemptible system kinds
// are supported.
func SimulateTrace(cfg Config, traceCSV io.Reader) (Result, error) {
	tr, err := replay.ReadCSV(traceCSV)
	if err != nil {
		return Result{}, err
	}
	if tr.Len() == 0 {
		return Result{}, errors.New("preemptsim: empty trace")
	}
	switch cfg.System {
	case "", LibPreemptible, LibPreemptibleNoUINTR:
	default:
		return Result{}, errors.New("preemptsim: SimulateTrace supports LibPreemptible variants only")
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = 4
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	pol, err := policyFor(cfg.Policy)
	if err != nil {
		return Result{}, err
	}
	mech := core.MechUINTR
	if cfg.System == LibPreemptibleNoUINTR {
		mech = core.MechKernelSignal
	}
	if cfg.Quantum == 0 && !cfg.Adaptive {
		mech = core.MechNone
	}
	s := core.New(core.Config{
		Workers: workers,
		Quantum: sim.Time(cfg.Quantum),
		Policy:  pol,
		Mech:    mech,
		Seed:    seed,
	})
	if cfg.Adaptive {
		mean := tr.TotalDemand() / sim.Time(tr.Len())
		acfg := adaptive.DefaultConfig(workload.RateForLoad(1.0, workers, mean))
		acfg.Period = tr.Duration() / 40
		if acfg.Period <= 0 {
			acfg.Period = sim.Millisecond
		}
		start := sim.Time(cfg.Quantum)
		if start == 0 {
			start = 20 * sim.Microsecond
		}
		adaptive.Attach(s, adaptive.NewController(acfg, start))
	}
	if err := tr.Replay(s.Eng, s.Submit); err != nil {
		return Result{}, err
	}
	s.Eng.RunAll()
	return Result{
		Completed:     s.Metrics.Completed,
		ThroughputRPS: s.Throughput(),
		Mean:          time.Duration(s.Metrics.Latency.Mean()),
		P50:           time.Duration(s.Metrics.Latency.Median()),
		P99:           time.Duration(s.Metrics.Latency.P99()),
		P999:          time.Duration(s.Metrics.Latency.P999()),
		Preemptions:   s.Metrics.Preemptions,
		Utilization:   s.WorkerUtilization(),
	}, nil
}

// RecordTrace draws a synthetic workload once and writes it as a CSV
// trace for SimulateTrace: the paper's workloads (A1/A2/B/C or custom)
// at a given fraction of the capacity of `workers` workers.
func RecordTrace(w io.Writer, wl Workload, load float64, workers int, duration time.Duration, seed uint64) error {
	if load <= 0 || duration <= 0 {
		return errors.New("preemptsim: need positive load and duration")
	}
	if workers <= 0 {
		workers = 4
	}
	if seed == 0 {
		seed = 1
	}
	first, second, err := wl.dists()
	if err != nil {
		return err
	}
	dur := sim.Time(duration)
	phases := []workload.Phase{{Service: first, Rate: workload.RateForLoad(load, workers, first.Mean())}}
	if second != nil {
		phases[0].Duration = dur / 2
		phases = append(phases, workload.Phase{
			Service: second, Rate: workload.RateForLoad(load, workers, second.Mean())})
	}
	tr := replay.Record(phases, dur, sched.ClassLC, seed)
	return tr.WriteCSV(w)
}
