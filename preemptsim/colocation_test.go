package preemptsim

import (
	"testing"
	"time"
)

func TestColocationPreemptionProtectsLC(t *testing.T) {
	base, err := SimulateColocation(ColocationConfig{QPS: 55000}, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := SimulateColocation(ColocationConfig{QPS: 55000, Quantum: 30 * time.Microsecond},
		500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if base.Preemptions != 0 || lib.Preemptions == 0 {
		t.Fatalf("preemption counters wrong: %d / %d", base.Preemptions, lib.Preemptions)
	}
	if lib.LCP99 >= base.LCP99 {
		t.Fatalf("LC p99 with preemption %v >= baseline %v", lib.LCP99, base.LCP99)
	}
	if float64(base.LCP99)/float64(lib.LCP99) < 2 {
		t.Fatalf("LC improvement only %.1fx, want several (paper: 3.2-4.4x)",
			float64(base.LCP99)/float64(lib.LCP99))
	}
	if lib.BECompleted == 0 || lib.LCCompleted == 0 {
		t.Fatal("class counters empty")
	}
	// BE pays for LC protection, but bounded.
	if float64(lib.BEMean) > float64(base.BEMean)*2 {
		t.Fatalf("BE mean penalty too large: %v vs %v", lib.BEMean, base.BEMean)
	}
}

func TestColocationDynamicInterval(t *testing.T) {
	res, err := SimulateColocation(ColocationConfig{
		QPS: 55000,
		Dynamic: &DynamicInterval{
			MinInterval: 10 * time.Microsecond,
			MaxInterval: 50 * time.Microsecond,
			LowQPS:      40000,
			HighQPS:     110000,
		},
	}, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Preemptions == 0 {
		t.Fatal("dynamic policy never preempted")
	}
	if res.LCP99 <= 0 || res.BEP99 <= 0 {
		t.Fatalf("empty stats: %+v", res)
	}
}

func TestColocationValidation(t *testing.T) {
	if _, err := SimulateColocation(ColocationConfig{QPS: 0}, time.Second); err == nil {
		t.Fatal("expected QPS error")
	}
	if _, err := SimulateColocation(ColocationConfig{QPS: 1000}, 0); err == nil {
		t.Fatal("expected duration error")
	}
	if _, err := SimulateColocation(ColocationConfig{QPS: 1000, BEFraction: 1.5}, time.Second); err == nil {
		t.Fatal("expected fraction error")
	}
}

func TestColocationDeterministic(t *testing.T) {
	run := func() ColocationResult {
		r, err := SimulateColocation(ColocationConfig{QPS: 40000, Quantum: 20 * time.Microsecond, Seed: 9},
			100*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	if run() != run() {
		t.Fatal("nondeterministic")
	}
}
