package preemptible

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/adaptive"
	"repro/internal/sim"
	"repro/internal/stats"
)

// PoolConfig parameterizes a Pool.
type PoolConfig struct {
	// Workers is the number of worker goroutines (the worker threads of
	// the two-level scheduler).
	Workers int
	// Quantum is the initial time slice (DefaultQuantum if 0).
	Quantum time.Duration
	// Adaptive, when non-nil, runs the Algorithm 1 quantum controller.
	Adaptive *AdaptiveConfig
	// Discipline selects FIFO (default, arrivals-first) or EDF
	// (deadline-ordered, with SubmitDeadline).
	Discipline Discipline
	// OnFailure, when non-nil, is invoked (outside the pool lock, on
	// the worker goroutine that contained the fault) every time a task
	// panics. Circuit breakers and alerting hook in here.
	OnFailure func(class Class, err *TaskError)
}

// AdaptiveConfig is the public mirror of the paper's Algorithm 1
// hyperparameters (see internal/adaptive for the semantics).
type AdaptiveConfig struct {
	// LHigh/LLow are arrival-rate thresholds in requests/second
	// (typically 90% and 10% of max load).
	LHigh, LLow float64
	// K1, K2, K3 are quantum adjustment steps.
	K1, K2, K3 time.Duration
	// TMin/TMax bound the quantum.
	TMin, TMax time.Duration
	// QThreshold is the preempted-queue-length trigger.
	QThreshold int
	// Period is the controller cadence.
	Period time.Duration
}

// PoolStats is a snapshot of a Pool's counters and latency summary.
// Every submitted task lands in exactly one terminal bucket:
// Submitted = Completed + Rejected + Shed + Failed + CancelledQueued +
// CancelledExecuting + ExpiredQueued + ExpiredExecuting + work still
// in flight — in aggregate and per class (PerClass).
type PoolStats struct {
	Submitted, Completed uint64
	Preemptions          uint64
	// Failed counts tasks that panicked mid-execution; the runtime
	// contained each fault (the worker survived) and the done callback
	// observed FailedLatency.
	Failed uint64
	// Rejected counts submissions refused at SubmitClass by a closed
	// class admission gate (SetClassAdmission).
	Rejected uint64
	// Shed counts tasks dropped without executing: pickup-deadline
	// (SubmitTimeout) sheds and EvictClass evictions.
	Shed uint64
	// CancelledQueued counts tasks evicted by TaskHandle.Cancel before
	// they ever ran; CancelledExecuting counts tasks that had started
	// and unwound at a safepoint (including while preempted-in-queue).
	CancelledQueued, CancelledExecuting uint64
	// ExpiredQueued counts tasks whose hard completion deadline
	// (SubmitOptions.Expire) passed while they were still queued — they
	// were dropped at dequeue and never executed. ExpiredExecuting
	// counts tasks whose deadline passed after they started; they
	// unwound at their next safepoint through the cancel-unwind path.
	ExpiredQueued, ExpiredExecuting uint64
	// DegradedRuns counts tasks executed cooperatively (inline, no
	// preemption) because the runtime refused Launch — the graceful
	// degradation path, which never loses a task.
	DegradedRuns   uint64
	QuantumNow     time.Duration
	Mean, P50, P99 time.Duration
	// PerClass splits the terminal buckets by service class.
	PerClass [NumClasses]ClassStats
}

// Cancelled is the total of both cancellation buckets.
func (s PoolStats) Cancelled() uint64 { return s.CancelledQueued + s.CancelledExecuting }

// Expired is the total of both deadline-expiry buckets.
func (s PoolStats) Expired() uint64 { return s.ExpiredQueued + s.ExpiredExecuting }

type poolArrival struct {
	task    Task
	st      *taskState
	arrival time.Time
	// deadline, when non-zero, is the pickup deadline: a worker
	// reaching the task after it sheds instead of running it.
	deadline time.Time
	// expires, when non-zero, is the hard completion deadline: a worker
	// reaching the task after it drops it as expired (ExpiredLatency)
	// instead of running doomed work.
	expires time.Time
	done    func(latency time.Duration)
}

type poolPreempted struct {
	fn      *Fn
	st      *taskState
	arrival time.Time
	done    func(latency time.Duration)
}

// Pool is the paper's two-level scheduler on the live runtime: a
// dispatcher queue of fresh arrivals (served first, giving preemptive
// priority to new — typically short — requests, the c-FCFS policy), a
// global list of preempted functions, worker goroutines running
// fn_launch/fn_resume, and an optional adaptive quantum controller.
type Pool struct {
	rt *Runtime

	mu         sync.Mutex
	cond       *sync.Cond
	discipline Discipline
	arrivals   []poolArrival
	arrHead    int
	preempted  []poolPreempted
	preHead    int
	edf        edfQueue
	seq        uint64
	closed     bool

	quantum         time.Duration
	hist            *stats.Histogram
	submitted       uint64
	completed       uint64
	preempts        uint64
	rejected        uint64
	shed            uint64
	failed          uint64
	cancelledQueued uint64
	cancelledExec   uint64
	expiredQueued   uint64
	expiredExec     uint64
	perClass        [NumClasses]ClassStats
	// running tracks tasks currently held by a worker (popped, not yet
	// settled or requeued); Drain raises their cancel flags when the
	// deadline passes, since they are in no queue to walk.
	running map[*taskState]struct{}
	// gateClosed marks classes whose admission gate is shut
	// (SetClassAdmission); the zero value — all gates open — is the
	// historical behavior.
	gateClosed [NumClasses]bool
	// tombstones counts queue entries whose task was cancel-evicted but
	// not yet skipped by a pop (lazy delete keeps the EDF heap intact).
	tombstones   int
	degradedRuns uint64
	winLats      []float64
	winArr       uint64

	onFailure func(class Class, err *TaskError)

	workersWG sync.WaitGroup
	ctlStop   chan struct{}
	ctlOnce   sync.Once // guards controller shutdown across Close/Drain
	ctlWG     sync.WaitGroup

	// drainOnce makes Drain (and therefore Close) idempotent: the first
	// call performs the shutdown and records its result; later calls
	// wait for that shutdown to finish and return the same result.
	drainOnce sync.Once
	drainDone chan struct{}
	drainErr  error
}

// NewPool starts the workers (and controller, if configured).
func NewPool(rt *Runtime, cfg PoolConfig) *Pool {
	if cfg.Workers <= 0 {
		panic("preemptible: pool needs at least one worker")
	}
	q := cfg.Quantum
	if q == 0 {
		q = DefaultQuantum
	}
	p := &Pool{
		rt:         rt,
		quantum:    q,
		discipline: cfg.Discipline,
		hist:       stats.NewHistogram(),
		running:    make(map[*taskState]struct{}),
		onFailure:  cfg.OnFailure,
		ctlStop:    make(chan struct{}),
		drainDone:  make(chan struct{}),
	}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < cfg.Workers; i++ {
		p.workersWG.Add(1)
		go p.worker()
	}
	if cfg.Adaptive != nil {
		p.ctlWG.Add(1)
		go p.controller(*cfg.Adaptive)
	}
	return p
}

// Submit enqueues a task; done (optional) is called with the task's
// sojourn latency when it completes (or a negative sentinel — see
// ShedLatency/CancelledLatency/FailedLatency — when it does not). The
// returned handle cancels the task at any point in its lifecycle.
// Submitting to a closed (or draining) pool returns ErrClosed and a
// nil handle — a Submit racing Close is an ordinary, handleable
// outcome, not a crash; done is never called. A nil task or invalid
// class still panics: those are caller bugs, not races.
func (p *Pool) Submit(task Task, done func(latency time.Duration)) (*TaskHandle, error) {
	return p.submit(task, time.Time{}, done)
}

// SubmitTimeout enqueues a task with a pickup deadline of now+timeout:
// if no worker reaches it before the deadline it is shed — never
// executed — and done is called with ShedLatency (-1). This is the
// pool's overload fast-reject path: under sustained overload the queue
// sheds stale work instead of growing without bound in useful-work
// terms. FIFO discipline only (EDF orders by its own deadlines).
// Returns ErrClosed after Close/Drain, like Submit.
func (p *Pool) SubmitTimeout(task Task, timeout time.Duration, done func(latency time.Duration)) (*TaskHandle, error) {
	if timeout <= 0 {
		panic("preemptible: non-positive timeout")
	}
	return p.submit(task, time.Now().Add(timeout), done)
}

func (p *Pool) submit(task Task, deadline time.Time, done func(latency time.Duration)) (*TaskHandle, error) {
	return p.submitOpts(ClassLC, task, deadline, time.Time{}, false, done)
}

// SubmitOptions bundles one submission's scheduling metadata — the
// single submit surface every Submit* convenience wrapper funnels into.
type SubmitOptions struct {
	// Class is the service class (default ClassLC).
	Class Class
	// Deadline, when non-zero, is the request's SLO deadline: under the
	// EDF discipline it orders execution; under FIFO it is carried as
	// metadata. With Expire set it is additionally a hard completion
	// deadline (see Expire).
	Deadline time.Time
	// Expire arms Deadline as a hard completion deadline: a worker
	// reaching the task after the deadline drops it at dequeue (done
	// observes ExpiredLatency, state TaskExpiredQueued, and no worker
	// time is spent), and a task already executing when the deadline
	// passes unwinds at its next Checkpoint/Yield through the
	// cancel-unwind path (ExpiredLatency, TaskExpiredExecuting). This
	// is end-to-end deadline propagation's server half: work whose
	// caller has given up is shed instead of finished.
	Expire bool
	// PickupTimeout, when positive, sheds the task if no worker reaches
	// it within the timeout (done observes ShedLatency), exactly like
	// SubmitTimeout. FIFO discipline only.
	PickupTimeout time.Duration
}

// SubmitWithOptions enqueues a task with explicit scheduling metadata.
// Returns ErrClosed after Close/Drain, like Submit.
func (p *Pool) SubmitWithOptions(task Task, opts SubmitOptions, done func(latency time.Duration)) (*TaskHandle, error) {
	if opts.Expire && opts.Deadline.IsZero() {
		panic("preemptible: SubmitOptions.Expire without a Deadline")
	}
	if opts.PickupTimeout < 0 {
		panic("preemptible: negative PickupTimeout")
	}
	var pickup time.Time
	if opts.PickupTimeout > 0 {
		pickup = time.Now().Add(opts.PickupTimeout)
	}
	return p.submitOpts(opts.Class, task, pickup, opts.Deadline, opts.Expire, done)
}

// submitOpts is the single admission path: every Submit* entry point
// lands here. pickup is the pickup deadline (zero = none); deadline is
// the SLO deadline (zero = none), hard iff expire.
func (p *Pool) submitOpts(class Class, task Task, pickup, deadline time.Time, expire bool, done func(latency time.Duration)) (*TaskHandle, error) {
	if task == nil {
		panic("preemptible: Submit(nil)")
	}
	if !class.valid() {
		panic(fmt.Sprintf("preemptible: invalid class %d", class))
	}
	st := &taskState{done: done, class: class}
	if expire {
		st.expires = deadline.UnixNano()
	}
	wrapped := p.bindCancel(task, st)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	p.submitted++
	p.perClass[class].Submitted++
	if p.gateClosed[class] {
		// Closed admission gate: the task is refused at the door — a
		// terminal outcome, never queued, so it is not arrival load.
		st.status = TaskRejected
		p.rejected++
		p.perClass[class].Rejected++
		p.mu.Unlock()
		if done != nil {
			done(RejectedLatency)
		}
		return &TaskHandle{p: p, st: st}, nil
	}
	p.winArr++
	if p.discipline == EDF {
		p.pushEDFLocked(&edfItem{task: wrapped, st: st, arrival: time.Now(), deadline: deadline, expire: expire, done: done})
	} else {
		p.arrivals = append(p.arrivals, poolArrival{task: wrapped, st: st, arrival: time.Now(), deadline: pickup, expires: expiresTime(st), done: done})
	}
	p.mu.Unlock()
	p.cond.Signal()
	return &TaskHandle{p: p, st: st}, nil
}

// expiresTime renders a taskState's hard deadline back as a time.Time
// (zero when none) for queue entries.
func expiresTime(st *taskState) time.Time {
	if st.expires == 0 {
		return time.Time{}
	}
	return time.Unix(0, st.expires)
}

// bindCancel wraps a task so its Ctx polls the submission's shared
// cancel flag — and hard completion deadline, when armed — at
// safepoints. Binding happens on the task goroutine before any user
// code, so a cancel (or an already-passed deadline) landing between
// queue pickup and first execution is observed at the very first
// Checkpoint.
func (p *Pool) bindCancel(task Task, st *taskState) Task {
	return func(ctx *Ctx) {
		ctx.cancelReq = &st.cancelReq
		ctx.expiresAt = st.expires
		task(ctx)
	}
}

// SubmitWait runs the task and blocks until it settles, returning its
// sojourn latency (or a negative sentinel — see FailedLatency — when
// it did not complete). Returns ErrClosed without running the task if
// the pool is closed.
func (p *Pool) SubmitWait(task Task) (time.Duration, error) {
	ch := make(chan time.Duration, 1)
	if _, err := p.Submit(task, func(l time.Duration) { ch <- l }); err != nil {
		return 0, err
	}
	return <-ch, nil
}

// SetQuantum updates the time slice used for subsequent launches and
// resumes.
func (p *Pool) SetQuantum(q time.Duration) {
	if q <= 0 {
		panic("preemptible: non-positive quantum")
	}
	p.mu.Lock()
	p.quantum = q
	p.mu.Unlock()
}

// Quantum reports the current time slice.
func (p *Pool) Quantum() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.quantum
}

// QueueLen reports queued work (fresh arrivals + preempted functions)
// not yet picked up by a worker. Admission controllers use it to
// fast-reject under overload.
func (p *Pool) QueueLen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return (len(p.arrivals) - p.arrHead) + (len(p.preempted) - p.preHead) + len(p.edf) - p.tombstones
}

// Stats snapshots the pool's counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{
		Submitted:          p.submitted,
		Completed:          p.completed,
		Preemptions:        p.preempts,
		Failed:             p.failed,
		Rejected:           p.rejected,
		Shed:               p.shed,
		CancelledQueued:    p.cancelledQueued,
		CancelledExecuting: p.cancelledExec,
		ExpiredQueued:      p.expiredQueued,
		ExpiredExecuting:   p.expiredExec,
		DegradedRuns:       p.degradedRuns,
		QuantumNow:         p.quantum,
		Mean:               time.Duration(p.hist.Mean()),
		P50:                time.Duration(p.hist.Median()),
		P99:                time.Duration(p.hist.P99()),
		PerClass:           p.perClass,
	}
}

// Close waits for all queued and executing work to finish, then stops
// the workers and the controller. Submitting after Close returns
// ErrClosed. Close is Drain without a deadline; it is idempotent and
// safe to combine with Drain (whichever stops the pool first wins).
func (p *Pool) Close() {
	p.Drain(context.Background()) //nolint:errcheck // no deadline → no error
}

// Drain shuts the pool down gracefully: admission stops immediately
// (Submit* return ErrClosed), queued and in-flight work keeps running
// until it finishes or ctx expires, and on expiry the stragglers are
// cancelled through the ordinary cancel paths — queued work is evicted
// (done observes CancelledLatency without ever occupying a worker),
// executing and preempted work unwinds at its next safepoint. Drain
// returns once every worker has exited: nil after a complete drain,
// ctx.Err() if the deadline forced cancellation. Note that an
// executing straggler that reaches no further safepoint still runs to
// completion — cancellation is cooperative, exactly like preemption —
// so Drain's post-deadline wait is bounded by the longest
// safepoint-free stretch, not by total remaining work.
//
// Drain is idempotent: the first call performs the shutdown; later
// calls (Drain or Close, from any goroutine) block until that shutdown
// finishes and return its result. A Drain on an idle pool returns as
// soon as the workers observe the closed flag — no timers, no deadline
// wait.
func (p *Pool) Drain(ctx context.Context) error {
	p.drainOnce.Do(func() {
		p.drainErr = p.drain(ctx)
		close(p.drainDone)
	})
	<-p.drainDone
	return p.drainErr
}

func (p *Pool) drain(ctx context.Context) error {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	workersDone := make(chan struct{})
	go func() {
		p.workersWG.Wait()
		close(workersDone)
	}()
	var err error
	select {
	case <-workersDone:
	case <-ctx.Done():
		err = ctx.Err()
		p.cancelStragglers()
		<-workersDone
	}
	p.ctlOnce.Do(func() { close(p.ctlStop) })
	p.ctlWG.Wait()
	return err
}

// cancelStragglers cancels everything still alive at the drain
// deadline: queued tasks are tombstone-evicted exactly as by
// TaskHandle.Cancel, preempted and running tasks get their cancel
// flags raised so they unwind at the next safepoint.
func (p *Pool) cancelStragglers() {
	var dones []func(time.Duration)
	p.mu.Lock()
	evict := func(st *taskState, done func(time.Duration)) {
		st.status = TaskCancelledQueued
		st.cancelReq.Store(1)
		p.cancelledQueued++
		p.perClass[st.class].CancelledQueued++
		p.tombstones++
		if done != nil {
			dones = append(dones, done)
		}
	}
	for i := p.arrHead; i < len(p.arrivals); i++ {
		a := &p.arrivals[i]
		if a.st != nil && a.st.status == TaskQueued {
			evict(a.st, a.done)
		}
	}
	for _, it := range p.edf {
		if it.st == nil {
			continue
		}
		switch it.st.status {
		case TaskQueued:
			evict(it.st, it.done)
		case TaskPreempted:
			it.st.cancelReq.Store(1)
		}
	}
	for i := p.preHead; i < len(p.preempted); i++ {
		if pr := &p.preempted[i]; pr.st != nil && pr.st.status == TaskPreempted {
			pr.st.cancelReq.Store(1)
		}
	}
	for st := range p.running {
		st.cancelReq.Store(1)
	}
	p.mu.Unlock()
	p.cond.Broadcast()
	for _, d := range dones {
		d(CancelledLatency)
	}
}

// next pops work: under FIFO, fresh arrivals first, then the preempted
// list; under EDF, the earliest deadline across both. Cancel-evicted
// tombstones are skipped here (their done already fired at Cancel
// time). The popped task's state moves to Running inside the lock, so
// a Cancel arriving after the pop takes the cooperative (flag) path
// instead of double-reporting an eviction. Returns with ok=false when
// the pool is closed and drained.
func (p *Pool) next() (arr *poolArrival, pre *poolPreempted, ed *edfItem, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.discipline == EDF {
		for {
			if it := p.popEDFLocked(); it != nil {
				if it.st != nil {
					it.st.status = TaskRunning
					p.running[it.st] = struct{}{}
				}
				return nil, nil, it, true
			}
			if p.closed {
				return nil, nil, nil, false
			}
			p.cond.Wait()
		}
	}
	for {
		if p.arrHead < len(p.arrivals) {
			a := p.arrivals[p.arrHead]
			p.arrivals[p.arrHead] = poolArrival{}
			p.arrHead++
			if p.arrHead > 256 && p.arrHead*2 >= len(p.arrivals) {
				p.arrivals = append([]poolArrival(nil), p.arrivals[p.arrHead:]...)
				p.arrHead = 0
			}
			if a.st.status == TaskCancelledQueued || a.st.status == TaskShed {
				// Tombstone: cancel-evicted or class-evicted; its done
				// already fired.
				p.tombstones--
				continue
			}
			a.st.status = TaskRunning
			p.running[a.st] = struct{}{}
			return &a, nil, nil, true
		}
		if p.preHead < len(p.preempted) {
			pr := p.preempted[p.preHead]
			p.preempted[p.preHead] = poolPreempted{}
			p.preHead++
			if p.preHead > 256 && p.preHead*2 >= len(p.preempted) {
				p.preempted = append([]poolPreempted(nil), p.preempted[p.preHead:]...)
				p.preHead = 0
			}
			pr.st.status = TaskRunning
			p.running[pr.st] = struct{}{}
			return nil, &pr, nil, true
		}
		if p.closed {
			return nil, nil, nil, false
		}
		p.cond.Wait()
	}
}

func (p *Pool) worker() {
	defer p.workersWG.Done()
	for {
		arr, pre, ed, ok := p.next()
		if !ok {
			return
		}
		q := p.Quantum()
		switch {
		case arr != nil:
			if !arr.expires.IsZero() && !time.Now().Before(arr.expires) {
				// Hard completion deadline already passed: the caller has
				// given up, so executing the task would burn worker time
				// on doomed work. Checked before the pickup deadline so a
				// request carrying both settles as expired, matching what
				// its client observed.
				p.expireQueued(arr.st, arr.done)
				continue
			}
			if !arr.deadline.IsZero() && time.Now().After(arr.deadline) {
				p.shedTask(arr.st, arr.done)
				continue
			}
			fn, err := p.rt.Launch(arr.task, q)
			if err != nil {
				// Runtime closed under us: run the task cooperatively
				// rather than losing it.
				p.runCooperative(arr.task, arr.st, arr.arrival, arr.done)
				continue
			}
			p.afterRun(fn, arr.st, arr.arrival, time.Time{}, arr.done)
		case pre != nil:
			// Let producer goroutines run before resuming preempted
			// work: the worker↔task channel handoff otherwise starves
			// submitters on saturated single-core schedulers, defeating
			// the arrivals-first discipline.
			runtime.Gosched()
			pre.fn.Resume(q)
			p.afterRun(pre.fn, pre.st, pre.arrival, time.Time{}, pre.done)
		case ed != nil:
			if ed.task != nil {
				if ed.expire && !time.Now().Before(ed.deadline) {
					// Fresh EDF work past its hard deadline: drop at
					// dequeue. Preempted items are not dropped here — they
					// already ran, so they unwind at the wake-up safepoint
					// and settle as ExpiredExecuting.
					p.expireQueued(ed.st, ed.done)
					continue
				}
				fn, err := p.rt.Launch(ed.task, q)
				if err != nil {
					p.runCooperative(ed.task, ed.st, ed.arrival, ed.done)
					continue
				}
				p.afterRun(fn, ed.st, ed.arrival, ed.deadline, ed.done)
			} else {
				runtime.Gosched()
				ed.fn.Resume(q)
				p.afterRun(ed.fn, ed.st, ed.arrival, ed.deadline, ed.done)
			}
		}
	}
}

// shedTask drops a task whose pickup deadline passed before any worker
// reached it; done observes ShedLatency.
func (p *Pool) shedTask(st *taskState, done func(time.Duration)) {
	p.mu.Lock()
	p.shed++
	if st != nil {
		st.status = TaskShed
		p.perClass[st.class].Shed++
		delete(p.running, st)
	}
	p.mu.Unlock()
	if done != nil {
		done(ShedLatency)
	}
}

// expireQueued drops a task whose hard completion deadline passed
// before any worker reached it; done observes ExpiredLatency and no
// worker time is spent on the doomed work.
func (p *Pool) expireQueued(st *taskState, done func(time.Duration)) {
	p.mu.Lock()
	p.expiredQueued++
	if st != nil {
		st.status = TaskExpiredQueued
		p.perClass[st.class].ExpiredQueued++
		delete(p.running, st)
	}
	p.mu.Unlock()
	if done != nil {
		done(ExpiredLatency)
	}
}

// finishExpired settles a task whose hard completion deadline passed
// after it started executing: it unwound at a safepoint through the
// cancel-unwind path, distinguished by the context's expired mark.
func (p *Pool) finishExpired(st *taskState, done func(time.Duration)) {
	p.mu.Lock()
	p.expiredExec++
	if st != nil {
		st.status = TaskExpiredExecuting
		p.perClass[st.class].ExpiredExecuting++
		delete(p.running, st)
	}
	p.mu.Unlock()
	if done != nil {
		done(ExpiredLatency)
	}
}

// runCooperative is the graceful-degradation path: the runtime refused
// Launch (closed mid-shutdown), so the task runs inline on the worker
// goroutine with a coop context — Checkpoint and Yield are no-ops, no
// preemption — and still completes and reports its latency. No task
// accepted by Submit is ever lost; a pending cancel still unwinds at
// the first safepoint even in degraded mode.
func (p *Pool) runCooperative(task Task, st *taskState, arrival time.Time, done func(time.Duration)) {
	ctx := &Ctx{coop: true}
	runTaskBody(task, ctx)
	if ctx.CancelUnwound() {
		if ctx.DeadlineExpired() {
			p.finishExpired(st, done)
		} else {
			p.finishCancelled(st, done)
		}
		return
	}
	if ctx.failure != nil {
		p.finishFailed(st, ctx.failure, done)
		return
	}
	lat := time.Since(arrival)
	p.mu.Lock()
	p.completed++
	p.degradedRuns++
	if st != nil {
		st.status = TaskCompleted
		p.perClass[st.class].Completed++
		delete(p.running, st)
	}
	p.hist.Record(int64(lat))
	p.winLats = append(p.winLats, float64(lat))
	p.mu.Unlock()
	if done != nil {
		done(lat)
	}
}

// finishCancelled settles a task that unwound at a safepoint.
func (p *Pool) finishCancelled(st *taskState, done func(time.Duration)) {
	p.mu.Lock()
	p.cancelledExec++
	if st != nil {
		st.status = TaskCancelledExecuting
		p.perClass[st.class].CancelledExecuting++
		delete(p.running, st)
	}
	p.mu.Unlock()
	if done != nil {
		done(CancelledLatency)
	}
}

// finishFailed settles a task whose body panicked: the fault was
// contained by runTaskBody, the worker is unharmed, and the captured
// TaskError is published on the handle (and to the OnFailure hook,
// invoked outside the lock on this worker goroutine).
func (p *Pool) finishFailed(st *taskState, terr *TaskError, done func(time.Duration)) {
	class := ClassLC
	p.mu.Lock()
	p.failed++
	if st != nil {
		class = st.class
		st.status = TaskFailed
		st.failure = terr
		p.perClass[st.class].Failed++
		delete(p.running, st)
	}
	hook := p.onFailure
	p.mu.Unlock()
	if hook != nil {
		hook(class, terr)
	}
	if done != nil {
		done(FailedLatency)
	}
}

func (p *Pool) afterRun(fn *Fn, st *taskState, arrival time.Time, deadline time.Time, done func(time.Duration)) {
	if fn.Failed() {
		p.finishFailed(st, fn.Err(), done)
		return
	}
	if fn.Completed() {
		if fn.Cancelled() {
			if fn.Expired() {
				p.finishExpired(st, done)
			} else {
				p.finishCancelled(st, done)
			}
			return
		}
		lat := time.Since(arrival)
		p.mu.Lock()
		p.completed++
		if st != nil {
			st.status = TaskCompleted
			p.perClass[st.class].Completed++
			delete(p.running, st)
		}
		p.hist.Record(int64(lat))
		p.winLats = append(p.winLats, float64(lat))
		p.mu.Unlock()
		if done != nil {
			done(lat)
		}
		return
	}
	p.mu.Lock()
	p.preempts++
	if st != nil {
		st.status = TaskPreempted
		delete(p.running, st)
	}
	if p.discipline == EDF {
		p.pushEDFLocked(&edfItem{fn: fn, st: st, arrival: arrival, deadline: deadline, done: done})
	} else {
		p.preempted = append(p.preempted, poolPreempted{fn: fn, st: st, arrival: arrival, done: done})
	}
	p.mu.Unlock()
	p.cond.Signal()
}

// controller runs Algorithm 1 against the pool's live statistics.
func (p *Pool) controller(cfg AdaptiveConfig) {
	defer p.ctlWG.Done()
	period := cfg.Period
	if period <= 0 {
		period = time.Second
	}
	acfg := adaptive.Config{
		LHigh:          cfg.LHigh,
		LLow:           cfg.LLow,
		K1:             sim.Time(cfg.K1),
		K2:             sim.Time(cfg.K2),
		K3:             sim.Time(cfg.K3),
		TMin:           sim.Time(cfg.TMin),
		TMax:           sim.Time(cfg.TMax),
		QThreshold:     cfg.QThreshold,
		HeavyTailAlpha: 2.0,
		Period:         sim.Time(period),
	}
	ctl := adaptive.NewController(acfg, sim.Time(p.Quantum()))
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-p.ctlStop:
			return
		case <-ticker.C:
		}
		p.mu.Lock()
		lats := p.winLats
		p.winLats = nil
		arr := p.winArr
		p.winArr = 0
		qlen := len(p.preempted) - p.preHead + len(p.edf)
		if p.discipline == EDF {
			qlen -= p.tombstones // cancel-evicted heap entries are not load
		}
		p.mu.Unlock()
		obs := adaptive.Observation{
			Rate:      float64(arr) / period.Seconds(),
			QueueLen:  qlen,
			Latencies: lats,
		}
		newQ := time.Duration(ctl.Step(obs))
		p.SetQuantum(newQ)
	}
}
