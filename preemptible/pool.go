package preemptible

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/adaptive"
	"repro/internal/sim"
	"repro/internal/stats"
)

// PoolConfig parameterizes a Pool.
type PoolConfig struct {
	// Workers is the number of worker goroutines (the worker threads of
	// the two-level scheduler).
	Workers int
	// Quantum is the initial time slice (DefaultQuantum if 0).
	Quantum time.Duration
	// Adaptive, when non-nil, runs the Algorithm 1 quantum controller.
	Adaptive *AdaptiveConfig
	// Discipline selects FIFO (default, arrivals-first) or EDF
	// (deadline-ordered, with SubmitDeadline).
	Discipline Discipline
}

// AdaptiveConfig is the public mirror of the paper's Algorithm 1
// hyperparameters (see internal/adaptive for the semantics).
type AdaptiveConfig struct {
	// LHigh/LLow are arrival-rate thresholds in requests/second
	// (typically 90% and 10% of max load).
	LHigh, LLow float64
	// K1, K2, K3 are quantum adjustment steps.
	K1, K2, K3 time.Duration
	// TMin/TMax bound the quantum.
	TMin, TMax time.Duration
	// QThreshold is the preempted-queue-length trigger.
	QThreshold int
	// Period is the controller cadence.
	Period time.Duration
}

// PoolStats is a snapshot of a Pool's counters and latency summary.
// Every submitted task lands in exactly one terminal bucket:
// Submitted = Completed + Rejected + Shed + CancelledQueued +
// CancelledExecuting + work still in flight — in aggregate and per
// class (PerClass).
type PoolStats struct {
	Submitted, Completed uint64
	Preemptions          uint64
	// Rejected counts submissions refused at SubmitClass by a closed
	// class admission gate (SetClassAdmission).
	Rejected uint64
	// Shed counts tasks dropped without executing: pickup-deadline
	// (SubmitTimeout) sheds and EvictClass evictions.
	Shed uint64
	// CancelledQueued counts tasks evicted by TaskHandle.Cancel before
	// they ever ran; CancelledExecuting counts tasks that had started
	// and unwound at a safepoint (including while preempted-in-queue).
	CancelledQueued, CancelledExecuting uint64
	// DegradedRuns counts tasks executed cooperatively (inline, no
	// preemption) because the runtime refused Launch — the graceful
	// degradation path, which never loses a task.
	DegradedRuns   uint64
	QuantumNow     time.Duration
	Mean, P50, P99 time.Duration
	// PerClass splits the terminal buckets by service class.
	PerClass [NumClasses]ClassStats
}

// Cancelled is the total of both cancellation buckets.
func (s PoolStats) Cancelled() uint64 { return s.CancelledQueued + s.CancelledExecuting }

type poolArrival struct {
	task    Task
	st      *taskState
	arrival time.Time
	// deadline, when non-zero, is the pickup deadline: a worker
	// reaching the task after it sheds instead of running it.
	deadline time.Time
	done     func(latency time.Duration)
}

type poolPreempted struct {
	fn      *Fn
	st      *taskState
	arrival time.Time
	done    func(latency time.Duration)
}

// Pool is the paper's two-level scheduler on the live runtime: a
// dispatcher queue of fresh arrivals (served first, giving preemptive
// priority to new — typically short — requests, the c-FCFS policy), a
// global list of preempted functions, worker goroutines running
// fn_launch/fn_resume, and an optional adaptive quantum controller.
type Pool struct {
	rt *Runtime

	mu         sync.Mutex
	cond       *sync.Cond
	discipline Discipline
	arrivals   []poolArrival
	arrHead    int
	preempted  []poolPreempted
	preHead    int
	edf        edfQueue
	seq        uint64
	closed     bool

	quantum         time.Duration
	hist            *stats.Histogram
	submitted       uint64
	completed       uint64
	preempts        uint64
	rejected        uint64
	shed            uint64
	cancelledQueued uint64
	cancelledExec   uint64
	perClass        [NumClasses]ClassStats
	// gateClosed marks classes whose admission gate is shut
	// (SetClassAdmission); the zero value — all gates open — is the
	// historical behavior.
	gateClosed [NumClasses]bool
	// tombstones counts queue entries whose task was cancel-evicted but
	// not yet skipped by a pop (lazy delete keeps the EDF heap intact).
	tombstones   int
	degradedRuns uint64
	winLats      []float64
	winArr       uint64

	workersWG sync.WaitGroup
	ctlStop   chan struct{}
	ctlWG     sync.WaitGroup
}

// NewPool starts the workers (and controller, if configured).
func NewPool(rt *Runtime, cfg PoolConfig) *Pool {
	if cfg.Workers <= 0 {
		panic("preemptible: pool needs at least one worker")
	}
	q := cfg.Quantum
	if q == 0 {
		q = DefaultQuantum
	}
	p := &Pool{
		rt:         rt,
		quantum:    q,
		discipline: cfg.Discipline,
		hist:       stats.NewHistogram(),
		ctlStop:    make(chan struct{}),
	}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < cfg.Workers; i++ {
		p.workersWG.Add(1)
		go p.worker()
	}
	if cfg.Adaptive != nil {
		p.ctlWG.Add(1)
		go p.controller(*cfg.Adaptive)
	}
	return p
}

// Submit enqueues a task; done (optional) is called with the task's
// sojourn latency when it completes (or a negative sentinel — see
// ShedLatency/CancelledLatency — when it does not). The returned
// handle cancels the task at any point in its lifecycle.
func (p *Pool) Submit(task Task, done func(latency time.Duration)) *TaskHandle {
	return p.submit(task, time.Time{}, done)
}

// SubmitTimeout enqueues a task with a pickup deadline of now+timeout:
// if no worker reaches it before the deadline it is shed — never
// executed — and done is called with ShedLatency (-1). This is the
// pool's overload fast-reject path: under sustained overload the queue
// sheds stale work instead of growing without bound in useful-work
// terms. FIFO discipline only (EDF orders by its own deadlines).
func (p *Pool) SubmitTimeout(task Task, timeout time.Duration, done func(latency time.Duration)) *TaskHandle {
	if timeout <= 0 {
		panic("preemptible: non-positive timeout")
	}
	return p.submit(task, time.Now().Add(timeout), done)
}

func (p *Pool) submit(task Task, deadline time.Time, done func(latency time.Duration)) *TaskHandle {
	return p.submitClass(ClassLC, task, deadline, done)
}

func (p *Pool) submitClass(class Class, task Task, deadline time.Time, done func(latency time.Duration)) *TaskHandle {
	if task == nil {
		panic("preemptible: Submit(nil)")
	}
	if !class.valid() {
		panic(fmt.Sprintf("preemptible: invalid class %d", class))
	}
	st := &taskState{done: done, class: class}
	wrapped := p.bindCancel(task, st)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		panic("preemptible: Submit on closed pool")
	}
	p.submitted++
	p.perClass[class].Submitted++
	if p.gateClosed[class] {
		// Closed admission gate: the task is refused at the door — a
		// terminal outcome, never queued, so it is not arrival load.
		st.status = TaskRejected
		p.rejected++
		p.perClass[class].Rejected++
		p.mu.Unlock()
		if done != nil {
			done(RejectedLatency)
		}
		return &TaskHandle{p: p, st: st}
	}
	p.winArr++
	if p.discipline == EDF {
		p.pushEDFLocked(&edfItem{task: wrapped, st: st, arrival: time.Now(), done: done})
	} else {
		p.arrivals = append(p.arrivals, poolArrival{task: wrapped, st: st, arrival: time.Now(), deadline: deadline, done: done})
	}
	p.mu.Unlock()
	p.cond.Signal()
	return &TaskHandle{p: p, st: st}
}

// bindCancel wraps a task so its Ctx polls the submission's shared
// cancel flag at safepoints. Binding happens on the task goroutine
// before any user code, so a cancel landing between queue pickup and
// first execution is observed at the very first Checkpoint.
func (p *Pool) bindCancel(task Task, st *taskState) Task {
	return func(ctx *Ctx) {
		ctx.cancelReq = &st.cancelReq
		task(ctx)
	}
}

// SubmitWait runs the task and blocks until it completes, returning its
// sojourn latency.
func (p *Pool) SubmitWait(task Task) time.Duration {
	ch := make(chan time.Duration, 1)
	p.Submit(task, func(l time.Duration) { ch <- l })
	return <-ch
}

// SetQuantum updates the time slice used for subsequent launches and
// resumes.
func (p *Pool) SetQuantum(q time.Duration) {
	if q <= 0 {
		panic("preemptible: non-positive quantum")
	}
	p.mu.Lock()
	p.quantum = q
	p.mu.Unlock()
}

// Quantum reports the current time slice.
func (p *Pool) Quantum() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.quantum
}

// QueueLen reports queued work (fresh arrivals + preempted functions)
// not yet picked up by a worker. Admission controllers use it to
// fast-reject under overload.
func (p *Pool) QueueLen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return (len(p.arrivals) - p.arrHead) + (len(p.preempted) - p.preHead) + len(p.edf) - p.tombstones
}

// Stats snapshots the pool's counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{
		Submitted:          p.submitted,
		Completed:          p.completed,
		Preemptions:        p.preempts,
		Rejected:           p.rejected,
		Shed:               p.shed,
		CancelledQueued:    p.cancelledQueued,
		CancelledExecuting: p.cancelledExec,
		DegradedRuns:       p.degradedRuns,
		QuantumNow:         p.quantum,
		Mean:               time.Duration(p.hist.Mean()),
		P50:                time.Duration(p.hist.Median()),
		P99:                time.Duration(p.hist.P99()),
		PerClass:           p.perClass,
	}
}

// Close waits for queued work to drain, then stops the workers and the
// controller. Submitting after Close panics.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.workersWG.Wait()
	close(p.ctlStop)
	p.ctlWG.Wait()
}

// next pops work: under FIFO, fresh arrivals first, then the preempted
// list; under EDF, the earliest deadline across both. Cancel-evicted
// tombstones are skipped here (their done already fired at Cancel
// time). The popped task's state moves to Running inside the lock, so
// a Cancel arriving after the pop takes the cooperative (flag) path
// instead of double-reporting an eviction. Returns with ok=false when
// the pool is closed and drained.
func (p *Pool) next() (arr *poolArrival, pre *poolPreempted, ed *edfItem, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.discipline == EDF {
		for {
			if it := p.popEDFLocked(); it != nil {
				if it.st != nil {
					it.st.status = TaskRunning
				}
				return nil, nil, it, true
			}
			if p.closed {
				return nil, nil, nil, false
			}
			p.cond.Wait()
		}
	}
	for {
		if p.arrHead < len(p.arrivals) {
			a := p.arrivals[p.arrHead]
			p.arrivals[p.arrHead] = poolArrival{}
			p.arrHead++
			if p.arrHead > 256 && p.arrHead*2 >= len(p.arrivals) {
				p.arrivals = append([]poolArrival(nil), p.arrivals[p.arrHead:]...)
				p.arrHead = 0
			}
			if a.st.status == TaskCancelledQueued || a.st.status == TaskShed {
				// Tombstone: cancel-evicted or class-evicted; its done
				// already fired.
				p.tombstones--
				continue
			}
			a.st.status = TaskRunning
			return &a, nil, nil, true
		}
		if p.preHead < len(p.preempted) {
			pr := p.preempted[p.preHead]
			p.preempted[p.preHead] = poolPreempted{}
			p.preHead++
			if p.preHead > 256 && p.preHead*2 >= len(p.preempted) {
				p.preempted = append([]poolPreempted(nil), p.preempted[p.preHead:]...)
				p.preHead = 0
			}
			pr.st.status = TaskRunning
			return nil, &pr, nil, true
		}
		if p.closed {
			return nil, nil, nil, false
		}
		p.cond.Wait()
	}
}

func (p *Pool) worker() {
	defer p.workersWG.Done()
	for {
		arr, pre, ed, ok := p.next()
		if !ok {
			return
		}
		q := p.Quantum()
		switch {
		case arr != nil:
			if !arr.deadline.IsZero() && time.Now().After(arr.deadline) {
				p.shedTask(arr.st, arr.done)
				continue
			}
			fn, err := p.rt.Launch(arr.task, q)
			if err != nil {
				// Runtime closed under us: run the task cooperatively
				// rather than losing it.
				p.runCooperative(arr.task, arr.st, arr.arrival, arr.done)
				continue
			}
			p.afterRun(fn, arr.st, arr.arrival, time.Time{}, arr.done)
		case pre != nil:
			// Let producer goroutines run before resuming preempted
			// work: the worker↔task channel handoff otherwise starves
			// submitters on saturated single-core schedulers, defeating
			// the arrivals-first discipline.
			runtime.Gosched()
			pre.fn.Resume(q)
			p.afterRun(pre.fn, pre.st, pre.arrival, time.Time{}, pre.done)
		case ed != nil:
			if ed.task != nil {
				fn, err := p.rt.Launch(ed.task, q)
				if err != nil {
					p.runCooperative(ed.task, ed.st, ed.arrival, ed.done)
					continue
				}
				p.afterRun(fn, ed.st, ed.arrival, ed.deadline, ed.done)
			} else {
				runtime.Gosched()
				ed.fn.Resume(q)
				p.afterRun(ed.fn, ed.st, ed.arrival, ed.deadline, ed.done)
			}
		}
	}
}

// shedTask drops a task whose pickup deadline passed before any worker
// reached it; done observes ShedLatency.
func (p *Pool) shedTask(st *taskState, done func(time.Duration)) {
	p.mu.Lock()
	p.shed++
	if st != nil {
		st.status = TaskShed
		p.perClass[st.class].Shed++
	}
	p.mu.Unlock()
	if done != nil {
		done(ShedLatency)
	}
}

// runCooperative is the graceful-degradation path: the runtime refused
// Launch (closed mid-shutdown), so the task runs inline on the worker
// goroutine with a coop context — Checkpoint and Yield are no-ops, no
// preemption — and still completes and reports its latency. No task
// accepted by Submit is ever lost; a pending cancel still unwinds at
// the first safepoint even in degraded mode.
func (p *Pool) runCooperative(task Task, st *taskState, arrival time.Time, done func(time.Duration)) {
	ctx := &Ctx{coop: true}
	runTaskBody(task, ctx)
	if ctx.CancelUnwound() {
		p.finishCancelled(st, done)
		return
	}
	lat := time.Since(arrival)
	p.mu.Lock()
	p.completed++
	p.degradedRuns++
	if st != nil {
		st.status = TaskCompleted
		p.perClass[st.class].Completed++
	}
	p.hist.Record(int64(lat))
	p.winLats = append(p.winLats, float64(lat))
	p.mu.Unlock()
	if done != nil {
		done(lat)
	}
}

// finishCancelled settles a task that unwound at a safepoint.
func (p *Pool) finishCancelled(st *taskState, done func(time.Duration)) {
	p.mu.Lock()
	p.cancelledExec++
	if st != nil {
		st.status = TaskCancelledExecuting
		p.perClass[st.class].CancelledExecuting++
	}
	p.mu.Unlock()
	if done != nil {
		done(CancelledLatency)
	}
}

func (p *Pool) afterRun(fn *Fn, st *taskState, arrival time.Time, deadline time.Time, done func(time.Duration)) {
	if fn.Completed() {
		if fn.Cancelled() {
			p.finishCancelled(st, done)
			return
		}
		lat := time.Since(arrival)
		p.mu.Lock()
		p.completed++
		if st != nil {
			st.status = TaskCompleted
			p.perClass[st.class].Completed++
		}
		p.hist.Record(int64(lat))
		p.winLats = append(p.winLats, float64(lat))
		p.mu.Unlock()
		if done != nil {
			done(lat)
		}
		return
	}
	p.mu.Lock()
	p.preempts++
	if st != nil {
		st.status = TaskPreempted
	}
	if p.discipline == EDF {
		p.pushEDFLocked(&edfItem{fn: fn, st: st, arrival: arrival, deadline: deadline, done: done})
	} else {
		p.preempted = append(p.preempted, poolPreempted{fn: fn, st: st, arrival: arrival, done: done})
	}
	p.mu.Unlock()
	p.cond.Signal()
}

// controller runs Algorithm 1 against the pool's live statistics.
func (p *Pool) controller(cfg AdaptiveConfig) {
	defer p.ctlWG.Done()
	period := cfg.Period
	if period <= 0 {
		period = time.Second
	}
	acfg := adaptive.Config{
		LHigh:          cfg.LHigh,
		LLow:           cfg.LLow,
		K1:             sim.Time(cfg.K1),
		K2:             sim.Time(cfg.K2),
		K3:             sim.Time(cfg.K3),
		TMin:           sim.Time(cfg.TMin),
		TMax:           sim.Time(cfg.TMax),
		QThreshold:     cfg.QThreshold,
		HeavyTailAlpha: 2.0,
		Period:         sim.Time(period),
	}
	ctl := adaptive.NewController(acfg, sim.Time(p.Quantum()))
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-p.ctlStop:
			return
		case <-ticker.C:
		}
		p.mu.Lock()
		lats := p.winLats
		p.winLats = nil
		arr := p.winArr
		p.winArr = 0
		qlen := len(p.preempted) - p.preHead + len(p.edf)
		if p.discipline == EDF {
			qlen -= p.tombstones // cancel-evicted heap entries are not load
		}
		p.mu.Unlock()
		obs := adaptive.Observation{
			Rate:      float64(arr) / period.Seconds(),
			QueueLen:  qlen,
			Latencies: lats,
		}
		newQ := time.Duration(ctl.Step(obs))
		p.SetQuantum(newQ)
	}
}
