package preemptible

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSubmitClassPerClassStats: completions land in the right class
// bucket and the class-unaware API stays ClassLC.
func TestSubmitClassPerClassStats(t *testing.T) {
	rt := newRT(t)
	p := NewPool(rt, PoolConfig{Workers: 2})
	defer p.Close()

	var wg sync.WaitGroup
	for i := 0; i < 5; i++ {
		wg.Add(1)
		p.SubmitClass(ClassBE, func(ctx *Ctx) {}, func(time.Duration) { wg.Done() })
	}
	for i := 0; i < 3; i++ {
		wg.Add(1)
		p.Submit(func(ctx *Ctx) {}, func(time.Duration) { wg.Done() })
	}
	wg.Wait()
	st := p.Stats()
	if st.PerClass[ClassBE].Submitted != 5 || st.PerClass[ClassBE].Completed != 5 {
		t.Fatalf("BE stats %+v", st.PerClass[ClassBE])
	}
	if st.PerClass[ClassLC].Submitted != 3 || st.PerClass[ClassLC].Completed != 3 {
		t.Fatalf("LC stats %+v", st.PerClass[ClassLC])
	}
	if st.Submitted != 8 || st.Completed != 8 {
		t.Fatalf("aggregate stats %+v", st)
	}
}

// TestClassAdmissionGate: a closed gate refuses BE at the door with
// RejectedLatency while LC flows; reopening restores BE.
func TestClassAdmissionGate(t *testing.T) {
	rt := newRT(t)
	p := NewPool(rt, PoolConfig{Workers: 1})
	defer p.Close()

	p.SetClassAdmission(ClassBE, false)
	var lat atomic.Int64
	done := make(chan struct{})
	h, _ := p.SubmitClass(ClassBE, func(ctx *Ctx) { t.Error("rejected task ran") },
		func(l time.Duration) { lat.Store(int64(l)); close(done) })
	<-done
	if time.Duration(lat.Load()) != RejectedLatency {
		t.Fatalf("rejected BE latency %v, want RejectedLatency", time.Duration(lat.Load()))
	}
	if got := h.State(); got != TaskRejected {
		t.Fatalf("rejected BE state %v", got)
	}
	if h.Cancel() {
		t.Fatal("Cancel accepted on a rejected task")
	}
	if got, _ := p.SubmitWait(func(ctx *Ctx) {}); got < 0 {
		t.Fatalf("LC refused while BE gate closed: %v", got)
	}

	p.SetClassAdmission(ClassBE, true)
	ch := make(chan time.Duration, 1)
	p.SubmitClass(ClassBE, func(ctx *Ctx) {}, func(l time.Duration) { ch <- l })
	if got := <-ch; got < 0 {
		t.Fatalf("BE refused after gate reopened: %v", got)
	}

	st := p.Stats()
	if st.PerClass[ClassBE].Rejected != 1 || st.Rejected != 1 {
		t.Fatalf("rejected counters: %+v", st)
	}
}

// TestEvictClassFIFO: with the single worker wedged, queued BE is
// evicted (ShedLatency, TaskShed) while queued LC survives and runs.
func TestEvictClassFIFO(t *testing.T) {
	rt := newRT(t)
	p := NewPool(rt, PoolConfig{Workers: 1})
	defer p.Close()

	gate := make(chan struct{})
	started := make(chan struct{})
	p.Submit(func(ctx *Ctx) { close(started); <-gate }, nil)
	<-started

	const nBE, nLC = 4, 3
	beCh := make(chan time.Duration, nBE)
	lcCh := make(chan time.Duration, nLC)
	var beHandles []*TaskHandle
	for i := 0; i < nBE; i++ {
		h, _ := p.SubmitClass(ClassBE, func(ctx *Ctx) {}, func(l time.Duration) { beCh <- l })
		beHandles = append(beHandles, h)
	}
	for i := 0; i < nLC; i++ {
		p.SubmitClass(ClassLC, func(ctx *Ctx) {}, func(l time.Duration) { lcCh <- l })
	}

	if n := p.EvictClass(ClassBE); n != nBE {
		t.Fatalf("EvictClass evicted %d, want %d", n, nBE)
	}
	for i := 0; i < nBE; i++ {
		if got := <-beCh; got != ShedLatency {
			t.Fatalf("evicted BE latency %v, want ShedLatency", got)
		}
	}
	for _, h := range beHandles {
		if got := h.State(); got != TaskShed {
			t.Fatalf("evicted BE state %v, want shed", got)
		}
	}
	// Double eviction finds nothing.
	if n := p.EvictClass(ClassBE); n != 0 {
		t.Fatalf("second EvictClass evicted %d", n)
	}

	close(gate)
	for i := 0; i < nLC; i++ {
		if got := <-lcCh; got < 0 {
			t.Fatalf("surviving LC latency %v", got)
		}
	}
	st := p.Stats()
	if st.PerClass[ClassBE].Shed != nBE || st.PerClass[ClassBE].Completed != 0 {
		t.Fatalf("BE stats after eviction: %+v", st.PerClass[ClassBE])
	}
	if st.PerClass[ClassLC].Completed != nLC+1 {
		t.Fatalf("LC stats after eviction: %+v", st.PerClass[ClassLC])
	}
}

// TestEvictClassEDF: eviction tombstones queued BE in the EDF heap
// without breaking deadline order for the surviving LC work.
func TestEvictClassEDF(t *testing.T) {
	rt := newRT(t)
	p := NewPool(rt, PoolConfig{Workers: 1, Discipline: EDF})
	defer p.Close()

	gate := make(chan struct{})
	started := make(chan struct{})
	p.Submit(func(ctx *Ctx) { close(started); <-gate }, nil)
	<-started

	now := time.Now()
	beCh := make(chan time.Duration, 2)
	var order []int
	var orderMu sync.Mutex
	lcDone := make(chan struct{}, 2)
	mk := func(id int) Task {
		return func(ctx *Ctx) {
			orderMu.Lock()
			order = append(order, id)
			orderMu.Unlock()
		}
	}
	p.SubmitClassDeadline(ClassBE, mk(100), now.Add(time.Millisecond), func(l time.Duration) { beCh <- l })
	p.SubmitClassDeadline(ClassLC, mk(2), now.Add(20*time.Millisecond), func(time.Duration) { lcDone <- struct{}{} })
	p.SubmitClassDeadline(ClassBE, mk(101), now.Add(2*time.Millisecond), func(l time.Duration) { beCh <- l })
	p.SubmitClassDeadline(ClassLC, mk(1), now.Add(10*time.Millisecond), func(time.Duration) { lcDone <- struct{}{} })

	if n := p.EvictClass(ClassBE); n != 2 {
		t.Fatalf("EvictClass evicted %d, want 2", n)
	}
	for i := 0; i < 2; i++ {
		if got := <-beCh; got != ShedLatency {
			t.Fatalf("evicted BE latency %v", got)
		}
	}
	close(gate)
	<-lcDone
	<-lcDone
	orderMu.Lock()
	defer orderMu.Unlock()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("surviving LC ran in order %v, want [1 2]", order)
	}
}

// TestPerClassConservation: under a concurrent mix of completions,
// gate rejections, evictions, and cancels, per-class conservation
// holds exactly once the pool drains.
func TestPerClassConservation(t *testing.T) {
	rt := newRT(t)
	p := NewPool(rt, PoolConfig{Workers: 2})

	var wg sync.WaitGroup
	track := func() func(time.Duration) {
		wg.Add(1)
		return func(time.Duration) { wg.Done() }
	}
	gate := make(chan struct{})
	for i := 0; i < 2; i++ {
		started := make(chan struct{})
		p.Submit(func(ctx *Ctx) { close(started); <-gate; ctx.Checkpoint() }, track())
		<-started
	}
	var handles []*TaskHandle
	for i := 0; i < 20; i++ {
		class := ClassLC
		if i%2 == 0 {
			class = ClassBE
		}
		h, _ := p.SubmitClass(class, func(ctx *Ctx) {}, track())
		handles = append(handles, h)
	}
	handles[3].Cancel() // queued LC cancel
	p.EvictClass(ClassBE)
	p.SetClassAdmission(ClassBE, false)
	p.SubmitClass(ClassBE, func(ctx *Ctx) {}, track()) // gate rejection
	p.SetClassAdmission(ClassBE, true)
	close(gate)
	wg.Wait()
	p.Close()

	st := p.Stats()
	for c := 0; c < NumClasses; c++ {
		cs := st.PerClass[c]
		if cs.Settled() != cs.Submitted {
			t.Fatalf("class %v not conserved: %+v", Class(c), cs)
		}
	}
	var agg ClassStats
	for c := 0; c < NumClasses; c++ {
		agg.Submitted += st.PerClass[c].Submitted
		agg.Completed += st.PerClass[c].Completed
		agg.Rejected += st.PerClass[c].Rejected
		agg.Shed += st.PerClass[c].Shed
		agg.CancelledQueued += st.PerClass[c].CancelledQueued
		agg.CancelledExecuting += st.PerClass[c].CancelledExecuting
	}
	if agg.Submitted != st.Submitted || agg.Completed != st.Completed ||
		agg.Rejected != st.Rejected || agg.Shed != st.Shed ||
		agg.CancelledQueued != st.CancelledQueued || agg.CancelledExecuting != st.CancelledExecuting {
		t.Fatalf("per-class totals disagree with aggregates:\nper-class %+v\naggregate %+v", agg, st)
	}
}

// TestOldestWait: the queue-delay signal sees the head-of-line arrival
// and goes back to zero when the queue drains.
func TestOldestWait(t *testing.T) {
	rt := newRT(t)
	p := NewPool(rt, PoolConfig{Workers: 1})
	defer p.Close()

	if got := p.OldestWait(time.Now()); got != 0 {
		t.Fatalf("OldestWait on idle pool = %v", got)
	}
	gate := make(chan struct{})
	started := make(chan struct{})
	p.Submit(func(ctx *Ctx) { close(started); <-gate }, nil)
	<-started
	done := make(chan time.Duration, 1)
	p.Submit(func(ctx *Ctx) {}, func(l time.Duration) { done <- l })
	time.Sleep(5 * time.Millisecond)
	if got := p.OldestWait(time.Now()); got < 2*time.Millisecond {
		t.Fatalf("OldestWait with queued work = %v, want ≥ 2ms", got)
	}
	close(gate)
	<-done
	// The queue may briefly contain nothing but already-popped work.
	deadline := time.Now().Add(time.Second)
	for p.OldestWait(time.Now()) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("OldestWait never returned to 0 after drain")
		}
		time.Sleep(time.Millisecond)
	}
}
