package preemptible

import (
	"errors"
	"sync/atomic"
	"time"
)

// Pacer executes actions at a fixed rate with precise timing — the live
// analog of the §VII-C traffic-shaping use case. It sleeps for the bulk
// of each gap and spin-waits the final stretch, trading a little CPU
// for pacing precision far below timer-wheel granularity (the same
// trade LibUtimer makes with its dedicated polling core).
type Pacer struct {
	gap time.Duration
	// SpinThreshold is how much of the tail of each gap is spin-waited
	// (default 100 µs).
	SpinThreshold time.Duration

	next    time.Time
	started atomic.Bool
	// Emitted counts Wait returns.
	emitted atomic.Uint64
}

// NewPacer builds a pacer emitting at the given rate (events/second).
func NewPacer(rate float64) (*Pacer, error) {
	if rate <= 0 {
		return nil, errors.New("preemptible: pacer rate must be positive")
	}
	return &Pacer{
		gap:           time.Duration(float64(time.Second) / rate),
		SpinThreshold: 100 * time.Microsecond,
	}, nil
}

// Gap reports the inter-event interval.
func (p *Pacer) Gap() time.Duration { return p.gap }

// Emitted reports how many events have been released.
func (p *Pacer) Emitted() uint64 { return p.emitted.Load() }

// Wait blocks until the next emission instant and returns it. The
// schedule is absolute (next = previous + gap), so per-wait errors do
// not accumulate; a caller that falls behind catches up without
// bunching more than one interval.
func (p *Pacer) Wait() time.Time {
	if !p.started.Load() {
		p.started.Store(true)
		p.next = time.Now()
	}
	target := p.next
	for {
		d := time.Until(target)
		if d <= 0 {
			break
		}
		if d > p.SpinThreshold {
			time.Sleep(d - p.SpinThreshold)
			continue
		}
		// Spin the final stretch for precision.
		for time.Now().Before(target) {
		}
		break
	}
	p.next = target.Add(p.gap)
	// Absolute scheduling lets a slightly-late caller catch up by
	// emitting promptly; only a severe stall (many gaps) restarts the
	// schedule instead of releasing a burst.
	if time.Until(p.next) < -10*p.gap {
		p.next = time.Now().Add(p.gap)
	}
	p.emitted.Add(1)
	return time.Now()
}
