package preemptible

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultResolution is the timer goroutine's polling period. The real
// LibUtimer polls the TSC continuously from a dedicated core and
// reaches 3 µs quanta; a Go timer goroutine is bounded by runtime timer
// resolution, so the default is conservative.
const DefaultResolution = 50 * time.Microsecond

// DefaultQuantum is the time slice used when a caller passes 0.
const DefaultQuantum = 500 * time.Microsecond

// DefaultWatchdogInterval is the supervisor's heartbeat-check period.
const DefaultWatchdogInterval = 2 * time.Millisecond

// Clock abstracts the runtime's time source: Now for deadline words and
// NewTicker for the timer loop's poll cadence. NewTicker returns the
// tick channel and a stop function (deliberately structural — no named
// ticker type — so fault injectors like internal/chaos can implement
// it without importing this package). The zero Config uses the real
// clock; a fault-injecting clock can starve tickers to simulate a
// wedged timer service.
type Clock interface {
	Now() time.Time
	NewTicker(d time.Duration) (ticks <-chan time.Time, stop func())
}

// realClock is the default Clock: time.Now and time.NewTicker.
type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func (realClock) NewTicker(d time.Duration) (<-chan time.Time, func()) {
	t := time.NewTicker(d)
	return t.C, t.Stop
}

// Config parameterizes a Runtime.
type Config struct {
	// Resolution is the deadline-polling period of the timer goroutine
	// (DefaultResolution if 0).
	Resolution time.Duration

	// Clock is the time source (real clock if nil). Injectable for
	// tests and chaos scenarios.
	Clock Clock

	// WatchdogInterval is how often the supervisor checks the timer
	// loop's heartbeat (DefaultWatchdogInterval if 0; negative disables
	// the watchdog). The watchdog always runs on the real clock, so it
	// keeps supervising even when an injected Clock misbehaves.
	WatchdogInterval time.Duration

	// StallThreshold is how stale the heartbeat may grow before the
	// watchdog declares the timer loop wedged, marks the runtime
	// Degraded, and restarts the loop. Default: 4× the effective
	// watchdog interval (but at least 8× Resolution).
	StallThreshold time.Duration

	// MaxTimerRestarts is the watchdog's escalation bound: after this
	// many restarts within RestartWindow the fault is treated as
	// persistent — the watchdog stops restarting, the runtime stays
	// Degraded forever, and Terminal() reports true. Fns keep running
	// cooperatively (Checkpoint enforces quanta with its own clock
	// reads). 0 = restart forever (the historical behavior).
	MaxTimerRestarts int

	// RestartWindow is the sliding window the escalation bound counts
	// restarts in (DefaultRestartWindow if 0). Restarts spread thinner
	// than MaxTimerRestarts per window — transient faults the restarts
	// actually cured — never escalate.
	RestartWindow time.Duration
}

// DefaultRestartWindow is the escalation window used when
// MaxTimerRestarts is set and RestartWindow is 0.
const DefaultRestartWindow = time.Second

// Runtime hosts preemptible functions and the timer service (the
// LibUtimer analog: one goroutine polling registered deadlines and
// raising preemption flags). A supervisor goroutine — the watchdog —
// monitors the timer loop's heartbeat and restarts it if it wedges;
// while the timer service is down the runtime reports Degraded and Fns
// keep running cooperatively (Checkpoint enforces deadlines with its
// own clock reads).
type Runtime struct {
	resolution     time.Duration
	clock          Clock
	watchdogPeriod time.Duration
	stallThreshold time.Duration
	maxRestarts    int
	restartWindow  time.Duration

	mu       sync.Mutex
	ctxs     map[*Ctx]struct{}
	closed   bool
	stop     chan struct{}
	loopQuit chan struct{} // closed by the watchdog to kill a wedged loop
	stopWG   sync.WaitGroup

	// heartbeat is the real-time unixnano of the timer loop's last
	// iteration, stamped on every tick and read by the watchdog.
	heartbeat atomic.Int64
	// degraded is set by the watchdog on a detected stall and cleared
	// by the timer loop's next successful tick.
	degraded atomic.Bool
	// terminal is set once the watchdog gives up restarting (the
	// escalation policy); it is never cleared.
	terminal atomic.Bool
	// timerRestarts counts watchdog-initiated timer-loop restarts.
	timerRestarts atomic.Uint64
	// timerFlags counts preemption flags raised by the timer loop
	// specifically (preemptions also counts Checkpoint's self-raised
	// flags).
	timerFlags atomic.Uint64

	// Preemptions counts deadline-expiry preemption flags raised.
	preemptions atomic.Uint64
	// launched counts Fns created.
	launched atomic.Uint64
}

// ErrClosed is returned by Launch after Close.
var ErrClosed = errors.New("preemptible: runtime closed")

// ErrDeadlineExpired is returned by LaunchWithDeadline when the task's
// deadline has already passed at launch time (admission control).
var ErrDeadlineExpired = errors.New("preemptible: deadline expired before launch")

// New starts a runtime, its timer goroutine, and (unless disabled) the
// watchdog supervising it.
func New(cfg Config) (*Runtime, error) {
	res := cfg.Resolution
	if res == 0 {
		res = DefaultResolution
	}
	if res < 0 {
		return nil, errors.New("preemptible: negative resolution")
	}
	clk := cfg.Clock
	if clk == nil {
		clk = realClock{}
	}
	wd := cfg.WatchdogInterval
	if wd == 0 {
		wd = DefaultWatchdogInterval
	}
	stall := cfg.StallThreshold
	if stall <= 0 {
		stall = 4 * wd
		if m := 8 * res; stall < m {
			stall = m
		}
	}
	rw := cfg.RestartWindow
	if rw == 0 {
		rw = DefaultRestartWindow
	}
	r := &Runtime{
		resolution:     res,
		clock:          clk,
		watchdogPeriod: wd,
		stallThreshold: stall,
		maxRestarts:    cfg.MaxTimerRestarts,
		restartWindow:  rw,
		ctxs:           make(map[*Ctx]struct{}),
		stop:           make(chan struct{}),
		loopQuit:       make(chan struct{}),
	}
	r.heartbeat.Store(time.Now().UnixNano())
	r.stopWG.Add(1)
	go r.utimerLoop(r.loopQuit)
	if wd > 0 {
		r.stopWG.Add(1)
		go r.watchdog()
	}
	return r, nil
}

// Close stops the timer goroutine and the watchdog. Fns still running
// keep working but will no longer be preempted by deadline expiry.
// Close is idempotent.
func (r *Runtime) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	close(r.stop)
	r.mu.Unlock()
	r.stopWG.Wait()
}

// Preemptions reports how many deadline expirations have been
// delivered (by the timer service or by Checkpoint's own clock read).
func (r *Runtime) Preemptions() uint64 { return r.preemptions.Load() }

// TimerPreemptions reports how many preemption flags the timer loop
// itself raised — the subset of Preemptions delivered by the timer
// service rather than self-enforced at a safepoint.
func (r *Runtime) TimerPreemptions() uint64 { return r.timerFlags.Load() }

// Launched reports how many Fns were created.
func (r *Runtime) Launched() uint64 { return r.launched.Load() }

// Resolution reports the timer polling period.
func (r *Runtime) Resolution() time.Duration { return r.resolution }

// Degraded reports whether the timer service is currently considered
// down (watchdog detected a stalled loop that has not ticked again
// yet). Fns keep running cooperatively while degraded: Checkpoint
// enforces deadlines with its own clock reads, so quanta are honored —
// only asynchronous flag delivery is lost.
func (r *Runtime) Degraded() bool { return r.degraded.Load() }

// Terminal reports whether the watchdog escalated: MaxTimerRestarts
// restarts landed inside RestartWindow, the fault was declared
// persistent, and the timer service was permanently retired. A
// terminal runtime stays Degraded forever but remains correct — quanta
// are enforced cooperatively at safepoints.
func (r *Runtime) Terminal() bool { return r.terminal.Load() }

// TimerRestarts reports how many times the watchdog restarted a wedged
// timer loop.
func (r *Runtime) TimerRestarts() uint64 { return r.timerRestarts.Load() }

// utimerLoop is the LibUtimer analog: poll the clock, compare against
// registered deadline words, raise preemption flags. quit is this
// loop generation's kill switch, closed by the watchdog on restart.
func (r *Runtime) utimerLoop(quit chan struct{}) {
	defer r.stopWG.Done()
	ticks, stopTicker := r.clock.NewTicker(r.resolution)
	defer stopTicker()
	for {
		select {
		case <-r.stop:
			return
		case <-quit:
			return
		case <-ticks:
		}
		if r.terminal.Load() {
			// The watchdog already declared the fault persistent; a
			// zombie generation reviving must not clear the terminal
			// Degraded state.
			return
		}
		r.heartbeat.Store(time.Now().UnixNano())
		r.degraded.Store(false)
		now := r.clock.Now().UnixNano()
		r.mu.Lock()
		for c := range r.ctxs {
			d := c.deadline.Load()
			if d != 0 && now >= d {
				if c.preempt.CompareAndSwap(0, 1) {
					r.preemptions.Add(1)
					r.timerFlags.Add(1)
				}
			}
		}
		r.mu.Unlock()
	}
}

// watchdog supervises the timer loop: if the heartbeat goes stale past
// the stall threshold the loop is declared wedged (blocked on a dead
// tick source, starved, or crashed), the runtime is marked Degraded,
// and a fresh loop generation is started with a fresh ticker. The
// watchdog deliberately uses the real clock, not the injectable one:
// it must outlive the fault it supervises.
//
// Escalation: with MaxTimerRestarts set, once that many restarts land
// inside RestartWindow the fault is persistent — restarting forever
// against it only burns cycles. The watchdog kills the wedged
// generation, marks the runtime terminally Degraded, and retires.
func (r *Runtime) watchdog() {
	defer r.stopWG.Done()
	ticker := time.NewTicker(r.watchdogPeriod)
	defer ticker.Stop()
	var restarts []time.Time // within-window restart history
	for {
		select {
		case <-r.stop:
			return
		case <-ticker.C:
		}
		stale := time.Since(time.Unix(0, r.heartbeat.Load()))
		if stale < r.stallThreshold {
			continue
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			return
		}
		r.degraded.Store(true)
		now := time.Now()
		if r.maxRestarts > 0 {
			keep := restarts[:0]
			for _, t := range restarts {
				if now.Sub(t) < r.restartWindow {
					keep = append(keep, t)
				}
			}
			restarts = keep
			if len(restarts) >= r.maxRestarts {
				// Persistent fault: stop the wedged generation for good
				// and leave the runtime terminally degraded.
				r.terminal.Store(true)
				close(r.loopQuit)
				r.mu.Unlock()
				return
			}
			restarts = append(restarts, now)
		}
		r.timerRestarts.Add(1)
		close(r.loopQuit)
		r.loopQuit = make(chan struct{})
		// Grace period: give the new loop a full threshold to produce
		// its first heartbeat before the next stall verdict.
		r.heartbeat.Store(now.UnixNano())
		r.stopWG.Add(1)
		go r.utimerLoop(r.loopQuit)
		r.mu.Unlock()
	}
}

// register adds a ctx's deadline word to the timer service
// (utimer_register). It fails with ErrClosed after Close so that a
// Launch racing Close can never leave a ctx registered forever.
func (r *Runtime) register(c *Ctx) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	r.ctxs[c] = struct{}{}
	return nil
}

// unregister removes a finished ctx.
func (r *Runtime) unregister(c *Ctx) {
	r.mu.Lock()
	delete(r.ctxs, c)
	r.mu.Unlock()
}

// registered reports the number of live deadline words (for tests).
func (r *Runtime) registered() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ctxs)
}
