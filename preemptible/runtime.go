package preemptible

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultResolution is the timer goroutine's polling period. The real
// LibUtimer polls the TSC continuously from a dedicated core and
// reaches 3 µs quanta; a Go timer goroutine is bounded by runtime timer
// resolution, so the default is conservative.
const DefaultResolution = 50 * time.Microsecond

// DefaultQuantum is the time slice used when a caller passes 0.
const DefaultQuantum = 500 * time.Microsecond

// Config parameterizes a Runtime.
type Config struct {
	// Resolution is the deadline-polling period of the timer goroutine
	// (DefaultResolution if 0).
	Resolution time.Duration
}

// Runtime hosts preemptible functions and the timer service (the
// LibUtimer analog: one goroutine polling registered deadlines and
// raising preemption flags).
type Runtime struct {
	resolution time.Duration

	mu     sync.Mutex
	ctxs   map[*Ctx]struct{}
	closed bool
	stop   chan struct{}
	stopWG sync.WaitGroup

	// Preemptions counts deadline-expiry preemption flags raised.
	preemptions atomic.Uint64
	// launched counts Fns created.
	launched atomic.Uint64
}

// ErrClosed is returned by Launch after Close.
var ErrClosed = errors.New("preemptible: runtime closed")

// New starts a runtime and its timer goroutine.
func New(cfg Config) (*Runtime, error) {
	res := cfg.Resolution
	if res == 0 {
		res = DefaultResolution
	}
	if res < 0 {
		return nil, errors.New("preemptible: negative resolution")
	}
	r := &Runtime{
		resolution: res,
		ctxs:       make(map[*Ctx]struct{}),
		stop:       make(chan struct{}),
	}
	r.stopWG.Add(1)
	go r.utimerLoop()
	return r, nil
}

// Close stops the timer goroutine. Fns still running keep working but
// will no longer be preempted by deadline expiry. Close is idempotent.
func (r *Runtime) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	close(r.stop)
	r.mu.Unlock()
	r.stopWG.Wait()
}

// Preemptions reports how many deadline expirations the timer service
// has delivered.
func (r *Runtime) Preemptions() uint64 { return r.preemptions.Load() }

// Launched reports how many Fns were created.
func (r *Runtime) Launched() uint64 { return r.launched.Load() }

// Resolution reports the timer polling period.
func (r *Runtime) Resolution() time.Duration { return r.resolution }

// utimerLoop is the LibUtimer analog: poll the clock, compare against
// registered deadline words, raise preemption flags.
func (r *Runtime) utimerLoop() {
	defer r.stopWG.Done()
	ticker := time.NewTicker(r.resolution)
	defer ticker.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-ticker.C:
		}
		now := time.Now().UnixNano()
		r.mu.Lock()
		for c := range r.ctxs {
			d := c.deadline.Load()
			if d != 0 && now >= d {
				if c.preempt.CompareAndSwap(0, 1) {
					r.preemptions.Add(1)
				}
			}
		}
		r.mu.Unlock()
	}
}

// register adds a ctx's deadline word to the timer service
// (utimer_register).
func (r *Runtime) register(c *Ctx) {
	r.mu.Lock()
	r.ctxs[c] = struct{}{}
	r.mu.Unlock()
}

// unregister removes a finished ctx.
func (r *Runtime) unregister(c *Ctx) {
	r.mu.Lock()
	delete(r.ctxs, c)
	r.mu.Unlock()
}
