package preemptible

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestEDFOrdersByDeadline(t *testing.T) {
	rt := newRT(t)
	p := NewPool(rt, PoolConfig{Workers: 1, Quantum: 50 * time.Millisecond, Discipline: EDF})
	defer p.Close()

	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup

	// Occupy the worker so the queue builds up deterministically.
	gate := make(chan struct{})
	wg.Add(1)
	p.Submit(func(ctx *Ctx) { <-gate }, func(time.Duration) { wg.Done() })
	time.Sleep(5 * time.Millisecond)

	now := time.Now()
	submit := func(name string, deadline time.Time) {
		wg.Add(1)
		p.SubmitDeadline(func(ctx *Ctx) {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
		}, deadline, func(time.Duration) { wg.Done() })
	}
	submit("late", now.Add(300*time.Millisecond))
	submit("none", time.Time{}) // deadline-free sorts last
	submit("early", now.Add(10*time.Millisecond))
	submit("mid", now.Add(100*time.Millisecond))
	close(gate)
	wg.Wait()

	want := []string{"early", "mid", "late", "none"}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEDFPreemptedKeepsDeadline(t *testing.T) {
	rt := newRT(t)
	p := NewPool(rt, PoolConfig{Workers: 1, Quantum: time.Millisecond, Discipline: EDF})
	defer p.Close()

	var wg sync.WaitGroup
	var tightDone, looseDone atomic.Int64

	// A long task with a TIGHT deadline and one with a LOOSE deadline:
	// after both get preempted, the tight one must keep winning the
	// worker until it finishes.
	now := time.Now()
	wg.Add(2)
	p.SubmitDeadline(func(ctx *Ctx) {
		spin(ctx, 15*time.Millisecond)
	}, now.Add(20*time.Millisecond), func(time.Duration) {
		tightDone.Store(time.Now().UnixNano())
		wg.Done()
	})
	p.SubmitDeadline(func(ctx *Ctx) {
		spin(ctx, 15*time.Millisecond)
	}, now.Add(10*time.Second), func(time.Duration) {
		looseDone.Store(time.Now().UnixNano())
		wg.Done()
	})
	wg.Wait()
	if tightDone.Load() >= looseDone.Load() {
		t.Fatal("tight-deadline task finished after loose-deadline task under EDF")
	}
	if p.Stats().Preemptions == 0 {
		t.Fatal("long tasks never preempted")
	}
}

func TestEDFSubmitPlainGoesDeadlineFree(t *testing.T) {
	rt := newRT(t)
	p := NewPool(rt, PoolConfig{Workers: 1, Quantum: 10 * time.Millisecond, Discipline: EDF})
	defer p.Close()
	// Plain Submit on an EDF pool is valid: deadline-free.
	lat, _ := p.SubmitWait(func(ctx *Ctx) {})
	if lat <= 0 {
		t.Fatal("no latency recorded")
	}
	if p.Stats().Completed != 1 {
		t.Fatal("completion lost")
	}
}

func TestSubmitDeadlineNilPanics(t *testing.T) {
	rt := newRT(t)
	p := NewPool(rt, PoolConfig{Workers: 1})
	defer p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.SubmitDeadline(nil, time.Now(), nil)
}

func TestFIFOPoolAcceptsDeadlines(t *testing.T) {
	rt := newRT(t)
	p := NewPool(rt, PoolConfig{Workers: 1})
	defer p.Close()
	done := make(chan struct{})
	p.SubmitDeadline(func(ctx *Ctx) {}, time.Now().Add(time.Second),
		func(time.Duration) { close(done) })
	<-done
}
