// Package preemptible is a Go implementation of the LibPreemptible API
// (HPCA 2024): a preemptive user-level task runtime with fine-grained,
// dynamically adjustable time quanta and user-defined scheduling
// policies.
//
// # Substitution for UINTR
//
// The original library preempts worker threads asynchronously with
// Intel user interrupts (UINTR) at 3 µs granularity. A Go library
// cannot interrupt a goroutine asynchronously — the Go runtime owns
// scheduling — so this implementation substitutes the delivery
// mechanism while keeping the architecture: a dedicated timer goroutine
// (the LibUtimer analog) polls a monotonic clock against per-task
// deadline words and raises a preemption flag; tasks observe the flag
// at safepoints (Ctx.Checkpoint calls, the analog of the compiler
// preemption points) and yield back to their scheduler with state
// saved. Granularity is bounded by safepoint density and Go timer
// resolution (tens of microseconds) instead of 3 µs; every other part
// of the paper's design — deadline arming, two-level scheduling,
// preempted-task lists, the adaptive quantum controller — carries over
// unchanged. The simulation packages in this repository reproduce the
// µs-scale results; this package is the adoptable library.
//
// # Core API
//
// Runtime hosts tasks and the timer service. Fn is a preemptible
// function: Launch starts it and returns when it completes or its time
// slice expires (fn_launch); Resume continues a preempted Fn
// (fn_resume); Completed reports whether a reschedule is needed
// (fn_completed). A round-robin scheduler over N tasks — the paper's
// Fig. 7 example — is:
//
//	rt, _ := preemptible.New(preemptible.Config{})
//	defer rt.Close()
//	fns := make([]*preemptible.Fn, 0, len(tasks))
//	for _, t := range tasks {
//		fns = append(fns, rt.Launch(t, quantum))
//	}
//	for live := len(fns); live > 0; {
//		for _, fn := range fns {
//			if !fn.Completed() {
//				fn.Resume(quantum)
//				if fn.Completed() {
//					live--
//				}
//			}
//		}
//	}
//
// Pool layers the paper's two-level scheduler on top: a dispatcher
// queue feeding worker goroutines, a global preempted list, per-class
// latency statistics, and optionally the Algorithm 1 adaptive quantum
// controller.
package preemptible
