package preemptible

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/stats"
)

func TestCancelQueuedEvicts(t *testing.T) {
	// A queued task cancelled before any worker reaches it must never
	// execute: done fires immediately with CancelledLatency and the
	// worker only ever runs the wedge task.
	rt := newRT(t)
	p := NewPool(rt, PoolConfig{Workers: 1})

	started := make(chan struct{})
	release := make(chan struct{})
	p.Submit(func(ctx *Ctx) {
		close(started)
		<-release
	}, nil)
	<-started // the single worker is now occupied

	executed := false
	ch := make(chan time.Duration, 1)
	h, _ := p.Submit(func(ctx *Ctx) { executed = true }, func(l time.Duration) { ch <- l })
	if got := h.State(); got != TaskQueued {
		t.Fatalf("state before cancel: %v", got)
	}
	if !h.Cancel() {
		t.Fatal("Cancel of a queued task returned false")
	}
	select {
	case lat := <-ch:
		if lat != CancelledLatency {
			t.Fatalf("done latency %v, want CancelledLatency", lat)
		}
	default:
		t.Fatal("queued eviction did not fire done synchronously")
	}
	if h.Cancel() {
		t.Fatal("double Cancel returned true")
	}
	if got := h.State(); got != TaskCancelledQueued {
		t.Fatalf("state after cancel: %v", got)
	}
	if h.Err() != ErrCancelled {
		t.Fatalf("Err() = %v, want ErrCancelled", h.Err())
	}
	if n := p.QueueLen(); n != 0 {
		t.Fatalf("QueueLen %d after eviction, want 0 (tombstone accounted)", n)
	}

	close(release)
	p.Close()
	if executed {
		t.Fatal("evicted task executed")
	}
	st := p.Stats()
	if st.CancelledQueued != 1 || st.CancelledExecuting != 0 || st.Completed != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestCancelExecutingUnwindsAtSafepoint(t *testing.T) {
	// Cancelling a running task raises the flag; the task unwinds at
	// its next Checkpoint, its defers run, and done reports
	// CancelledLatency through the normal completion path.
	rt := newRT(t)
	p := NewPool(rt, PoolConfig{Workers: 1, Quantum: time.Millisecond})

	started := make(chan struct{})
	var deferRan bool
	ch := make(chan time.Duration, 1)
	h, _ := p.Submit(func(ctx *Ctx) {
		defer func() { deferRan = true }()
		close(started)
		for {
			ctx.Checkpoint()
			time.Sleep(50 * time.Microsecond)
		}
	}, func(l time.Duration) { ch <- l })
	<-started

	if !h.Cancel() {
		t.Fatal("Cancel of a running task returned false")
	}
	lat := <-ch
	if lat != CancelledLatency {
		t.Fatalf("done latency %v, want CancelledLatency", lat)
	}
	if got := h.State(); got != TaskCancelledExecuting {
		t.Fatalf("state: %v", got)
	}
	if !deferRan {
		t.Fatal("task defers did not run during cancel-unwind")
	}
	p.Close()
	st := p.Stats()
	if st.CancelledExecuting != 1 || st.Completed != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestCancelPreemptedInQueue(t *testing.T) {
	// Cancel while the task sits preempted in the queue: the flag is
	// raised, and the resume unwinds immediately — no further user code
	// segment runs (yieldNow re-checks on wake).
	rt := newRT(t)
	p := NewPool(rt, PoolConfig{Workers: 1, Quantum: 100 * time.Microsecond})

	started := make(chan struct{})
	segments := 0
	ch := make(chan time.Duration, 1)
	h, _ := p.Submit(func(ctx *Ctx) {
		close(started)
		for {
			segments++
			busy := time.Now().Add(200 * time.Microsecond)
			for time.Now().Before(busy) {
			}
			ctx.Checkpoint() // quantum (100µs) already expired: preempts here
		}
	}, func(l time.Duration) { ch <- l })
	<-started

	// Queue a wedge arrival while the spinner runs: arrivals-first FIFO
	// means the worker picks it right after the spinner's first
	// preemption, parking the spinner stably in the preempted list.
	release := make(chan struct{})
	wstart := make(chan struct{})
	p.Submit(func(ctx *Ctx) { close(wstart); <-release }, nil)
	<-wstart
	waitUntil(t, 2*time.Second, func() bool { return h.State() == TaskPreempted },
		"task to be preempted into the queue")

	segsAtCancel := segments
	if !h.Cancel() {
		t.Fatal("Cancel of a preempted task returned false")
	}
	close(release)
	if lat := <-ch; lat != CancelledLatency {
		t.Fatalf("done latency %v, want CancelledLatency", lat)
	}
	if got := h.State(); got != TaskCancelledExecuting {
		t.Fatalf("state: %v", got)
	}
	if segments != segsAtCancel {
		t.Fatalf("task ran %d more segments after a preempted-state cancel",
			segments-segsAtCancel)
	}
	p.Close()
}

func TestCancelRunningWithoutSafepointsCompletes(t *testing.T) {
	// Cancellation is cooperative: a running task that reaches no
	// further safepoint completes normally and done sees the real
	// latency.
	rt := newRT(t)
	p := NewPool(rt, PoolConfig{Workers: 1})

	started := make(chan struct{})
	release := make(chan struct{})
	ch := make(chan time.Duration, 1)
	h, _ := p.Submit(func(ctx *Ctx) {
		close(started)
		<-release
		// no Checkpoint between here and return
	}, func(l time.Duration) { ch <- l })
	<-started

	if !h.Cancel() {
		t.Fatal("Cancel of a running task returned false")
	}
	close(release)
	if lat := <-ch; lat < 0 {
		t.Fatalf("task without safepoints reported %v, want real latency", lat)
	}
	if got := h.State(); got != TaskCompleted {
		t.Fatalf("state: %v", got)
	}
	p.Close()
	st := p.Stats()
	if st.Completed != 1 || st.Cancelled() != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestCancelCompletedReturnsFalse(t *testing.T) {
	rt := newRT(t)
	p := NewPool(rt, PoolConfig{Workers: 1})
	ch := make(chan time.Duration, 1)
	h, _ := p.Submit(func(ctx *Ctx) {}, func(l time.Duration) { ch <- l })
	<-ch
	waitUntil(t, 2*time.Second, func() bool { return h.State() == TaskCompleted },
		"task to settle")
	if h.Cancel() {
		t.Fatal("Cancel of a completed task returned true")
	}
	if h.Err() != nil {
		t.Fatalf("Err() = %v for a completed task", h.Err())
	}
	p.Close()
}

func TestCancelObservableViaCtxPolling(t *testing.T) {
	// Ctx.Cancelled lets a task poll without unwinding; a voluntary
	// normal return after a cancel request still counts as completion.
	rt := newRT(t)
	p := NewPool(rt, PoolConfig{Workers: 1})
	started := make(chan struct{})
	sawCancel := make(chan bool, 1)
	ch := make(chan time.Duration, 1)
	h, _ := p.Submit(func(ctx *Ctx) {
		close(started)
		for !ctx.Cancelled() {
			time.Sleep(50 * time.Microsecond)
		}
		sawCancel <- true
	}, func(l time.Duration) { ch <- l })
	<-started
	h.Cancel()
	if !<-sawCancel {
		t.Fatal("task never observed the cancel flag")
	}
	if lat := <-ch; lat < 0 {
		t.Fatalf("voluntary return reported %v, want real latency", lat)
	}
	if got := h.State(); got != TaskCompleted {
		t.Fatalf("state: %v", got)
	}
	p.Close()
}

// edfModelEntry mirrors one live heap item for the property test.
type edfModelEntry struct {
	st       *taskState
	deadline time.Time
	seq      uint64
}

// edfLess replicates edfQueue.Less on model entries.
func edfLess(a, b edfModelEntry) bool {
	switch {
	case a.deadline.IsZero() && b.deadline.IsZero():
		return a.seq < b.seq
	case a.deadline.IsZero():
		return false
	case b.deadline.IsZero():
		return true
	case !a.deadline.Equal(b.deadline):
		return a.deadline.Before(b.deadline)
	default:
		return a.seq < b.seq
	}
}

func TestEDFCancelProperty(t *testing.T) {
	// Property test of the EDF heap under mixed Submit/Cancel/pop
	// interleavings, against a flat-slice model: pops come out in
	// deadline order among live items, cancelled items never
	// resurrect, and stats account for every submission exactly once.
	// Workerless pool: pushes and pops are driven by the test itself.
	base := time.Now()
	for _, seed := range []int64{1, 7, 42, 1337, 99991} {
		rng := rand.New(rand.NewSource(seed))
		p := &Pool{
			quantum:    DefaultQuantum,
			discipline: EDF,
			hist:       stats.NewHistogram(),
			ctlStop:    make(chan struct{}),
		}
		p.cond = sync.NewCond(&p.mu)

		var (
			live      []edfModelEntry // queued, not cancelled, not popped
			cancelled = make(map[*taskState]bool)
			handles   []*TaskHandle
			doneCalls = make(map[*taskState]int)
			popped    int
			cancels   int
			submits   int
		)
		noop := func(ctx *Ctx) {}

		popOne := func() {
			p.mu.Lock()
			it := p.popEDFLocked()
			if it != nil {
				// Mirror next(): the pop and the Running transition are
				// one critical section.
				it.st.status = TaskRunning
			}
			p.mu.Unlock()
			if len(live) == 0 {
				if it != nil {
					t.Fatalf("seed %d: pop returned an item with no live work", seed)
				}
				return
			}
			if it == nil {
				t.Fatalf("seed %d: pop returned nil with %d live items", seed, len(live))
			}
			if cancelled[it.st] {
				t.Fatalf("seed %d: cancelled item resurrected by pop", seed)
			}
			// The popped item must be the EDF-minimum of the model.
			min := 0
			for i := 1; i < len(live); i++ {
				if edfLess(live[i], live[min]) {
					min = i
				}
			}
			if live[min].st != it.st {
				t.Fatalf("seed %d: pop violated deadline order (got seq %d, want seq %d)",
					seed, it.seq, live[min].seq)
			}
			live = append(live[:min], live[min+1:]...)
			popped++
		}

		const ops = 3000
		for i := 0; i < ops; i++ {
			switch r := rng.Intn(10); {
			case r < 5: // submit
				var dl time.Time
				if rng.Intn(4) != 0 { // 1 in 4 deadline-free
					dl = base.Add(time.Duration(rng.Intn(1000)) * time.Millisecond)
				}
				h, _ := p.SubmitDeadline(noop, dl, nil)
				h.st.done = func(st *taskState) func(time.Duration) {
					return func(l time.Duration) {
						if l != CancelledLatency {
							t.Errorf("seed %d: done saw %v, want CancelledLatency", seed, l)
						}
						doneCalls[st]++
					}
				}(h.st)
				handles = append(handles, h)
				p.mu.Lock()
				seq := p.seq
				p.mu.Unlock()
				live = append(live, edfModelEntry{st: h.st, deadline: dl, seq: seq})
				submits++
			case r < 8: // cancel a random queued item (or a dead one)
				if len(live) > 0 && rng.Intn(5) != 0 {
					i := rng.Intn(len(live))
					e := live[i]
					hh := &TaskHandle{p: p, st: e.st}
					if !hh.Cancel() {
						t.Fatalf("seed %d: Cancel of a live queued item returned false", seed)
					}
					if doneCalls[e.st] != 1 {
						t.Fatalf("seed %d: done fired %d times on eviction", seed, doneCalls[e.st])
					}
					cancelled[e.st] = true
					live = append(live[:i], live[i+1:]...)
					cancels++
				} else if len(handles) > 0 {
					// Cancel something already cancelled or popped: must
					// be rejected and must not double-fire done.
					h := handles[rng.Intn(len(handles))]
					if st := h.State(); st == TaskCancelledQueued || st == TaskRunning {
						before := doneCalls[h.st]
						if st == TaskCancelledQueued && h.Cancel() {
							t.Fatalf("seed %d: double Cancel returned true", seed)
						}
						if doneCalls[h.st] != before {
							t.Fatalf("seed %d: done re-fired on double cancel", seed)
						}
					}
				}
			default: // pop
				popOne()
			}
		}
		// Drain: every remaining live item must pop, in order, and the
		// heap must end empty with zero outstanding tombstones.
		for len(live) > 0 {
			popOne()
		}
		// A final pop sweeps any remaining tombstones and must find no
		// live work.
		p.mu.Lock()
		if it := p.popEDFLocked(); it != nil {
			p.mu.Unlock()
			t.Fatalf("seed %d: drained heap still popped an item", seed)
		}
		if p.tombstones != 0 || len(p.edf) != 0 {
			tombs, left := p.tombstones, len(p.edf)
			p.mu.Unlock()
			t.Fatalf("seed %d: after full drain: %d tombstones, %d heap entries", seed, tombs, left)
		}
		p.mu.Unlock()

		st := p.Stats()
		if st.Submitted != uint64(submits) || st.CancelledQueued != uint64(cancels) {
			t.Fatalf("seed %d: stats %+v, want submitted=%d cancelledQueued=%d",
				seed, st, submits, cancels)
		}
		if int(st.Submitted) != popped+cancels {
			t.Fatalf("seed %d: conservation broken: submitted=%d popped=%d cancelled=%d",
				seed, st.Submitted, popped, cancels)
		}
		totalDone := 0
		for _, n := range doneCalls {
			totalDone += n
		}
		if totalDone != cancels {
			t.Fatalf("seed %d: done fired %d times for %d cancels", seed, totalDone, cancels)
		}
	}
}
