package preemptible_test

import (
	"fmt"
	"time"

	"repro/preemptible"
)

// The paper's fn_launch / fn_resume / fn_completed loop: a task runs in
// slices under a scheduler-chosen time quantum.
func ExampleRuntime_Launch() {
	rt, err := preemptible.New(preemptible.Config{})
	if err != nil {
		panic(err)
	}
	defer rt.Close()

	steps := 0
	fn, err := rt.Launch(func(ctx *preemptible.Ctx) {
		for i := 0; i < 3; i++ {
			steps++
			ctx.Yield() // voluntarily end this slice
		}
	}, time.Second)
	if err != nil {
		panic(err)
	}
	for !fn.Completed() { // fn_completed
		fn.Resume(time.Second) // fn_resume
	}
	fmt.Println("steps:", steps)
	// Output: steps: 3
}

// A Pool schedules many tasks over a bounded worker set with the
// two-level (arrivals-first) discipline.
func ExamplePool() {
	rt, err := preemptible.New(preemptible.Config{})
	if err != nil {
		panic(err)
	}
	defer rt.Close()

	pool := preemptible.NewPool(rt, preemptible.PoolConfig{Workers: 2})
	total := 0
	for i := 1; i <= 4; i++ {
		i := i
		pool.SubmitWait(func(ctx *preemptible.Ctx) { total += i })
	}
	pool.Close()
	fmt.Println("sum:", total)
	// Output: sum: 10
}
