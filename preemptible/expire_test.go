package preemptible

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

// TestExpireQueuedAtDequeue: work whose hard completion deadline passes
// while it waits behind a blocker is dropped at dequeue — it never
// executes, done observes ExpiredLatency, and the expiry lands in the
// ExpiredQueued bucket.
func TestExpireQueuedAtDequeue(t *testing.T) {
	rt := newRT(t)
	p := NewPool(rt, PoolConfig{Workers: 1})

	started := make(chan struct{})
	release := make(chan struct{})
	p.Submit(func(ctx *Ctx) {
		close(started)
		<-release
	}, nil)
	<-started // the single worker is now occupied

	const n = 8
	var executed atomic.Int32
	ch := make(chan time.Duration, n)
	handles := make([]*TaskHandle, 0, n)
	for i := 0; i < n; i++ {
		h, err := p.SubmitWithOptions(func(ctx *Ctx) { executed.Add(1) }, SubmitOptions{
			Class:    ClassBE,
			Deadline: time.Now().Add(5 * time.Millisecond),
			Expire:   true,
		}, func(l time.Duration) { ch <- l })
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}

	time.Sleep(20 * time.Millisecond) // let every deadline pass while queued
	close(release)

	for i := 0; i < n; i++ {
		select {
		case lat := <-ch:
			if lat != ExpiredLatency {
				t.Fatalf("done latency %v, want ExpiredLatency", lat)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("expired task never settled")
		}
	}
	if got := executed.Load(); got != 0 {
		t.Fatalf("%d doomed tasks executed, want 0", got)
	}
	for _, h := range handles {
		if got := h.State(); got != TaskExpiredQueued {
			t.Fatalf("state = %v, want TaskExpiredQueued", got)
		}
		if h.Err() != ErrExpired {
			t.Fatalf("Err() = %v, want ErrExpired", h.Err())
		}
	}
	p.Close()
	st := p.Stats()
	if st.ExpiredQueued != n || st.ExpiredExecuting != 0 {
		t.Fatalf("ExpiredQueued=%d ExpiredExecuting=%d, want %d/0", st.ExpiredQueued, st.ExpiredExecuting, n)
	}
	be := st.PerClass[ClassBE]
	if be.ExpiredQueued != n {
		t.Fatalf("per-class ExpiredQueued=%d, want %d", be.ExpiredQueued, n)
	}
	if be.Settled() != be.Submitted {
		t.Fatalf("BE conservation: settled %d != submitted %d", be.Settled(), be.Submitted)
	}
}

// TestExpireExecutingUnwindsAtSafepoint: a task already running when its
// hard deadline passes unwinds at its next Checkpoint through the
// cancel-unwind path, settling as ExpiredExecuting — and its defers run.
func TestExpireExecutingUnwindsAtSafepoint(t *testing.T) {
	rt := newRT(t)
	p := NewPool(rt, PoolConfig{Workers: 1})

	var deferred atomic.Bool
	var reachedAfter atomic.Bool
	ch := make(chan time.Duration, 1)
	h, err := p.SubmitWithOptions(func(ctx *Ctx) {
		defer deferred.Store(true)
		deadline := time.Now().Add(10 * time.Millisecond)
		for time.Now().Before(deadline.Add(20 * time.Millisecond)) {
			ctx.Checkpoint()
		}
		reachedAfter.Store(true)
	}, SubmitOptions{
		Deadline: time.Now().Add(10 * time.Millisecond),
		Expire:   true,
	}, func(l time.Duration) { ch <- l })
	if err != nil {
		t.Fatal(err)
	}

	select {
	case lat := <-ch:
		if lat != ExpiredLatency {
			t.Fatalf("done latency %v, want ExpiredLatency", lat)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("expiring task never settled")
	}
	if !deferred.Load() {
		t.Fatal("task defers did not run on expiry unwind")
	}
	if reachedAfter.Load() {
		t.Fatal("task ran past its hard deadline to completion")
	}
	if got := h.State(); got != TaskExpiredExecuting {
		t.Fatalf("state = %v, want TaskExpiredExecuting", got)
	}
	if h.Err() != ErrExpired {
		t.Fatalf("Err() = %v, want ErrExpired", h.Err())
	}
	p.Close()
	st := p.Stats()
	if st.ExpiredExecuting != 1 || st.ExpiredQueued != 0 {
		t.Fatalf("ExpiredExecuting=%d ExpiredQueued=%d, want 1/0", st.ExpiredExecuting, st.ExpiredQueued)
	}
}

// TestExpireEDFFreshDropsAtDequeue: under the EDF discipline a fresh
// item popped past its hard deadline is dropped, while an unexpired
// sibling still runs.
func TestExpireEDFFreshDropsAtDequeue(t *testing.T) {
	rt := newRT(t)
	p := NewPool(rt, PoolConfig{Workers: 1, Discipline: EDF})

	started := make(chan struct{})
	release := make(chan struct{})
	p.Submit(func(ctx *Ctx) {
		close(started)
		<-release
	}, nil)
	<-started

	var doomedRan, freshRan atomic.Bool
	doomedCh := make(chan time.Duration, 1)
	freshCh := make(chan time.Duration, 1)
	if _, err := p.SubmitWithOptions(func(ctx *Ctx) { doomedRan.Store(true) }, SubmitOptions{
		Deadline: time.Now().Add(5 * time.Millisecond),
		Expire:   true,
	}, func(l time.Duration) { doomedCh <- l }); err != nil {
		t.Fatal(err)
	}
	if _, err := p.SubmitWithOptions(func(ctx *Ctx) { freshRan.Store(true) }, SubmitOptions{
		Deadline: time.Now().Add(time.Hour),
		Expire:   true,
	}, func(l time.Duration) { freshCh <- l }); err != nil {
		t.Fatal(err)
	}

	time.Sleep(20 * time.Millisecond)
	close(release)

	if lat := <-doomedCh; lat != ExpiredLatency {
		t.Fatalf("doomed latency %v, want ExpiredLatency", lat)
	}
	if lat := <-freshCh; lat < 0 {
		t.Fatalf("fresh task got sentinel %v, want completion", lat)
	}
	if doomedRan.Load() {
		t.Fatal("doomed EDF task executed")
	}
	if !freshRan.Load() {
		t.Fatal("unexpired EDF task did not execute")
	}
	p.Close()
}

// TestExpirePreemptedSettlesExecuting: a task preempted mid-run whose
// hard deadline passes while it waits in the preempted queue unwinds at
// the wake-up safepoint on resume — ExpiredExecuting, not a dequeue
// drop, because the work already started.
func TestExpirePreemptedSettlesExecuting(t *testing.T) {
	rt := newRT(t)
	p := NewPool(rt, PoolConfig{Workers: 1, Quantum: time.Millisecond})

	ch := make(chan time.Duration, 1)
	h, err := p.SubmitWithOptions(func(ctx *Ctx) {
		// Yield explicitly so the task parks in the preempted queue,
		// then sleep long enough on the outside for the deadline to pass
		// before it is resumed.
		ctx.Yield()
		for {
			ctx.Checkpoint()
		}
	}, SubmitOptions{
		Deadline: time.Now().Add(15 * time.Millisecond),
		Expire:   true,
	}, func(l time.Duration) { ch <- l })
	if err != nil {
		t.Fatal(err)
	}

	select {
	case lat := <-ch:
		if lat != ExpiredLatency {
			t.Fatalf("done latency %v, want ExpiredLatency", lat)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("preempted task never expired")
	}
	if got := h.State(); got != TaskExpiredExecuting {
		t.Fatalf("state = %v, want TaskExpiredExecuting", got)
	}
	p.Close()
}

// TestSoftDeadlineDoesNotExpire: SubmitClassDeadline (no Expire) keeps
// its historical soft-SLO semantics — late work still runs to
// completion.
func TestSoftDeadlineDoesNotExpire(t *testing.T) {
	rt := newRT(t)
	p := NewPool(rt, PoolConfig{Workers: 1, Discipline: EDF})

	started := make(chan struct{})
	release := make(chan struct{})
	p.Submit(func(ctx *Ctx) {
		close(started)
		<-release
	}, nil)
	<-started

	var ran atomic.Bool
	ch := make(chan time.Duration, 1)
	if _, err := p.SubmitDeadline(func(ctx *Ctx) { ran.Store(true) },
		time.Now().Add(time.Millisecond), func(l time.Duration) { ch <- l }); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	close(release)
	if lat := <-ch; lat < 0 {
		t.Fatalf("soft-deadline task got sentinel %v, want completion", lat)
	}
	if !ran.Load() {
		t.Fatal("late soft-deadline task did not run")
	}
	p.Close()
}

// TestSubmitWithOptionsValidation: Expire without a Deadline and a
// negative PickupTimeout are caller bugs.
func TestSubmitWithOptionsValidation(t *testing.T) {
	rt := newRT(t)
	p := NewPool(rt, PoolConfig{Workers: 1})
	defer p.Close()

	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	expectPanic("Expire without Deadline", func() {
		p.SubmitWithOptions(func(ctx *Ctx) {}, SubmitOptions{Expire: true}, nil) //nolint:errcheck
	})
	expectPanic("negative PickupTimeout", func() {
		p.SubmitWithOptions(func(ctx *Ctx) {}, SubmitOptions{PickupTimeout: -1}, nil) //nolint:errcheck
	})
}

// TestDrainIdleFastPath: Drain on an idle pool returns promptly (no
// deadline wait), and repeated Drain/Close calls are no-ops returning
// the first result.
func TestDrainIdleFastPath(t *testing.T) {
	rt := newRT(t)
	p := NewPool(rt, PoolConfig{Workers: 4})

	if lat, err := p.SubmitWait(func(ctx *Ctx) {}); err != nil || lat < 0 {
		t.Fatalf("warmup: lat=%v err=%v", lat, err)
	}

	start := time.Now()
	if err := p.Drain(context.Background()); err != nil {
		t.Fatalf("Drain of idle pool: %v", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("idle Drain took %v, want fast return", d)
	}

	// Second Drain — even with an already-expired context — must not
	// re-run shutdown or report the dead context's error: it returns the
	// first call's result.
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	defer cancel()
	if err := p.Drain(expired); err != nil {
		t.Fatalf("second Drain: %v, want nil (first result)", err)
	}
	p.Close() // third shutdown: still a no-op
	if _, err := p.Submit(func(ctx *Ctx) {}, nil); err != ErrClosed {
		t.Fatalf("Submit after Drain: %v, want ErrClosed", err)
	}
}

// TestDrainConcurrentIdempotent: many goroutines racing Drain/Close all
// observe the same single shutdown.
func TestDrainConcurrentIdempotent(t *testing.T) {
	rt := newRT(t)
	p := NewPool(rt, PoolConfig{Workers: 2})
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() { errs <- p.Drain(context.Background()) }()
	}
	for i := 0; i < 8; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("racing Drain: %v", err)
		}
	}
}
