package preemptible

import (
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"
)

// Task is the body of a preemptible function. It must call
// ctx.Checkpoint() inside long-running loops; checkpoints are the
// safepoints at which preemption is observed (the substitution for
// asynchronous UINTR delivery — see the package comment).
type Task func(ctx *Ctx)

// Ctx is the execution context handed to a Task. It carries the
// deadline word the timer service polls (the paper's 64-byte-aligned
// deadline address) and the preemption flag.
type Ctx struct {
	rt       *Runtime
	deadline atomic.Int64  // unixnano of next preemption; 0 = disarmed
	preempt  atomic.Uint32 // raised by the timer goroutine

	// cancelReq, when non-nil, points at the submission's shared cancel
	// flag (raised by TaskHandle.Cancel). Checkpoint and Yield observe
	// it and unwind the task; it is bound by the Pool before any user
	// code runs, so only the task goroutine ever touches the pointer.
	cancelReq *atomic.Uint32
	// expiresAt, when non-zero, is the submission's hard completion
	// deadline in unixnanos (SubmitOptions.Expire): Checkpoint and
	// Yield compare it against the clock and unwind the task once it
	// passes — doomed work stops at the next safepoint instead of
	// finishing for a caller that already gave up. Bound by the Pool
	// before any user code runs, read-only afterwards.
	expiresAt int64
	// unwound records that the task exited via cancel-unwind rather
	// than a normal return (fn_completed(cancelled)).
	unwound atomic.Bool
	// expired records that the unwind was triggered by the hard
	// completion deadline rather than a cancel request.
	expired atomic.Bool

	// failure records a panic runTaskBody captured: the task died but
	// the Fn completes through the ordinary yield path in StateFailed.
	// Written by the task goroutine before its final yieldCh send, read
	// by the scheduler after the matching receive — the channel handoff
	// orders the accesses.
	failure *TaskError

	// coop marks a degraded-mode context: the task runs inline with no
	// scheduler to yield to, so Yield and Checkpoint-triggered yields
	// are no-ops (see Pool's graceful degradation).
	coop bool

	runCh   chan struct{}
	yieldCh chan bool // true = task finished

	checkpoints atomic.Uint64
	yields      atomic.Uint64
}

// cancelPanic is the sentinel thrown by a safepoint to unwind a
// cancelled task; the launch wrapper recovers it and completes the Fn
// through the normal yield path.
type cancelPanic struct{}

// TaskError is the captured panic of a failed task: the recovered
// value plus the stack at the panic site. The runtime contains the
// fault — the worker, timer service, and queues stay healthy — and the
// Fn completes in StateFailed carrying this record, so the scheduler
// can attribute the crash without the process dying with it.
type TaskError struct {
	// Value is the value the task panicked with.
	Value any
	// Stack is the goroutine stack captured at recovery, panic site
	// included.
	Stack []byte
}

func (e *TaskError) Error() string {
	return fmt.Sprintf("preemptible: task panicked: %v", e.Value)
}

// Checkpoint is the safepoint: on a raised preemption flag it saves
// control state and returns to the scheduler that called Launch/Resume,
// blocking until resumed. It also compares the armed deadline word
// against the clock itself (~one vDSO clock read): the timer goroutine
// is the designed delivery mechanism — the LibUtimer analog — but on
// GOMAXPROCS=1 a spinning task can starve it indefinitely (the Go
// analog of the paper's observation that software timer delivery is
// unreliable under load), so deadline enforcement cannot rely on the
// timer alone. The clock read keeps quanta honored regardless; tasks
// whose safepoints are extremely hot can rely on the flag being set by
// the timer goroutine arriving first on multi-core schedulers.
func (c *Ctx) Checkpoint() {
	c.checkpoints.Add(1)
	if c.Cancelled() {
		c.unwind()
	}
	c.checkExpiry()
	if c.preempt.Load() == 1 {
		c.yieldNow()
		return
	}
	if d := c.deadline.Load(); d != 0 && time.Now().UnixNano() >= d {
		if c.preempt.CompareAndSwap(0, 1) && c.rt != nil {
			c.rt.preemptions.Add(1)
		}
		c.yieldNow()
	}
}

// Yield voluntarily returns control to the scheduler regardless of the
// deadline (cooperative yield). Like Checkpoint, it is a safepoint: a
// pending cancel unwinds the task here.
func (c *Ctx) Yield() {
	if c.Cancelled() {
		c.unwind()
	}
	c.checkExpiry()
	c.yieldNow()
}

// Preempted reports whether a preemption is pending (without yielding).
func (c *Ctx) Preempted() bool { return c.preempt.Load() == 1 }

// Cancelled reports whether a cancel is pending (without unwinding).
// Tasks with expensive sections between safepoints can poll it and
// return early voluntarily; a normal return after a cancel request
// still counts as completion.
func (c *Ctx) Cancelled() bool {
	return c.cancelReq != nil && c.cancelReq.Load() == 1
}

// unwind aborts the task at the current safepoint: it marks the context
// cancel-unwound and panics with the sentinel the launch wrapper (or
// the degraded-mode runner) recovers, so the task's own defers run and
// control returns to the scheduler exactly as on completion. The
// unwinding panic passes through user frames; a task body that recovers
// all panics indiscriminately defeats cancellation and must rethrow
// values it does not own.
func (c *Ctx) unwind() {
	c.unwound.Store(true)
	c.deadline.Store(0)
	c.preempt.Store(0)
	panic(cancelPanic{})
}

// checkExpiry unwinds the task if its hard completion deadline has
// passed — the expiry analog of the pending-cancel check, sharing the
// same sentinel-panic unwind path but recording the cause so the pool
// settles the task as expired rather than cancelled.
func (c *Ctx) checkExpiry() {
	if c.expiresAt != 0 && time.Now().UnixNano() >= c.expiresAt {
		c.expired.Store(true)
		c.unwind()
	}
}

// CancelUnwound reports whether the task exited via cancel-unwind
// (fn_completed(cancelled)) rather than a normal return.
func (c *Ctx) CancelUnwound() bool { return c.unwound.Load() }

// DeadlineExpired reports whether the task's unwind was triggered by
// its hard completion deadline (SubmitOptions.Expire) rather than a
// cancel request.
func (c *Ctx) DeadlineExpired() bool { return c.expired.Load() }

// Deadline reports the armed preemption deadline (zero Time if none).
func (c *Ctx) Deadline() time.Time {
	d := c.deadline.Load()
	if d == 0 {
		return time.Time{}
	}
	return time.Unix(0, d)
}

// Checkpoints reports how many safepoints the task has passed.
func (c *Ctx) Checkpoints() uint64 { return c.checkpoints.Load() }

func (c *Ctx) yieldNow() {
	c.yields.Add(1)
	c.deadline.Store(0)
	c.preempt.Store(0)
	if c.coop {
		// Degraded mode: no scheduler is blocked on yieldCh; keep
		// running cooperatively.
		return
	}
	c.yieldCh <- false
	<-c.runCh
	// Re-check on wake: a task cancelled (or whose hard deadline
	// passed) while preempted-in-queue must unwind on its resume
	// without running another inter-safepoint segment of user code.
	if c.Cancelled() {
		c.unwind()
	}
	c.checkExpiry()
}

// FnState is a Fn's lifecycle state.
type FnState int32

const (
	// StatePreempted: the Fn is stopped at a safepoint, resumable.
	StatePreempted FnState = iota
	// StateRunning: the Fn is executing (its scheduler is blocked in
	// Launch/Resume).
	StateRunning
	// StateCompleted: the task returned; Resume is an error.
	StateCompleted
	// StateFailed: the task panicked; the Fn is terminal and Err
	// carries the captured panic. Resume is an error.
	StateFailed
)

func (s FnState) String() string {
	switch s {
	case StatePreempted:
		return "preempted"
	case StateRunning:
		return "running"
	case StateCompleted:
		return "completed"
	case StateFailed:
		return "failed"
	default:
		return "invalid"
	}
}

// Fn is a preemptible function: a Task bound to a context and a
// deadline (the paper's Fn = {Context, Deadline}).
type Fn struct {
	rt    *Runtime
	ctx   *Ctx
	state atomic.Int32

	// Preemptions counts times this Fn was preempted.
	Preemptions int
}

// Launch creates a preemptible function and runs it immediately
// (fn_launch): control returns to the caller when the task completes or
// its time slice (quantum; DefaultQuantum if 0) expires at a
// checkpoint. The returned Fn is resumable if not completed.
func (r *Runtime) Launch(task Task, quantum time.Duration) (*Fn, error) {
	if task == nil {
		panic("preemptible: nil task")
	}
	fn := &Fn{
		rt: r,
		ctx: &Ctx{
			rt:      r,
			runCh:   make(chan struct{}),
			yieldCh: make(chan bool),
		},
	}
	// Registration and the closed check are one critical section: a
	// Launch racing Close either loses cleanly (ErrClosed, nothing
	// registered) or wins and is fully registered before Close's timer
	// shutdown completes.
	if err := r.register(fn.ctx); err != nil {
		return nil, err
	}
	r.launched.Add(1)
	go func() {
		<-fn.ctx.runCh
		runTaskBody(task, fn.ctx)
		fn.ctx.deadline.Store(0)
		fn.ctx.preempt.Store(0)
		fn.ctx.yieldCh <- true
	}()
	fn.resume(quantum)
	return fn, nil
}

// runTaskBody executes the task, containing every panic. The
// cancel-unwind sentinel is absorbed silently: a cancelled task's stack
// unwinds (its defers run) and the Fn completes through the ordinary
// yield path, state Completed with ctx.CancelUnwound() set. Any other
// panic is a task fault, not a runtime fault: the value and stack are
// captured into a TaskError and the Fn completes in StateFailed through
// the same path, so one poisoned task can never take down the worker,
// the timer service, or the queues around it.
func runTaskBody(task Task, ctx *Ctx) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(cancelPanic); ok {
				return
			}
			ctx.failure = &TaskError{Value: r, Stack: debug.Stack()}
		}
	}()
	task(ctx)
}

// LaunchWithDeadline is Launch with admission control: if deadline is
// non-zero and already past, the task is rejected with
// ErrDeadlineExpired instead of running work whose result is already
// late. This is the fast-reject path overloaded schedulers use to shed
// queued work at the last responsible moment.
func (r *Runtime) LaunchWithDeadline(task Task, quantum time.Duration, deadline time.Time) (*Fn, error) {
	if !deadline.IsZero() && !r.clock.Now().Before(deadline) {
		return nil, ErrDeadlineExpired
	}
	return r.Launch(task, quantum)
}

// Resume continues a preempted function (fn_resume) until the next
// quantum expiry or completion. Resuming a completed, failed, or
// running Fn panics: all three indicate a scheduler bug — a failed Fn
// in particular is terminal, its task goroutine is gone, and there is
// nothing left to continue.
func (fn *Fn) Resume(quantum time.Duration) {
	switch FnState(fn.state.Load()) {
	case StateCompleted:
		panic("preemptible: Resume of completed Fn")
	case StateFailed:
		panic("preemptible: Resume of failed Fn")
	case StateRunning:
		panic("preemptible: concurrent Resume")
	}
	fn.resume(quantum)
}

func (fn *Fn) resume(quantum time.Duration) {
	if quantum <= 0 {
		quantum = DefaultQuantum
	}
	fn.state.Store(int32(StateRunning))
	// Arm the deadline word (utimer_arm_deadline: one memory write).
	fn.ctx.deadline.Store(fn.rt.clock.Now().Add(quantum).UnixNano())
	fn.ctx.runCh <- struct{}{}
	done := <-fn.ctx.yieldCh
	if done {
		if fn.ctx.failure != nil {
			fn.state.Store(int32(StateFailed))
		} else {
			fn.state.Store(int32(StateCompleted))
		}
		fn.rt.unregister(fn.ctx)
		return
	}
	fn.Preemptions++
	fn.state.Store(int32(StatePreempted))
}

// Completed reports whether the task finished (fn_completed), so that
// no reschedule is necessary.
func (fn *Fn) Completed() bool {
	return FnState(fn.state.Load()) == StateCompleted
}

// Failed reports whether the task panicked; the captured panic is in
// Err. A failed Fn is terminal: like Completed, no reschedule is
// necessary (or possible).
func (fn *Fn) Failed() bool {
	return FnState(fn.state.Load()) == StateFailed
}

// Err reports a failed Fn's captured panic (nil unless Failed).
func (fn *Fn) Err() *TaskError {
	if fn.Failed() {
		return fn.ctx.failure
	}
	return nil
}

// Cancelled reports fn_completed(cancelled): the task completed by
// unwinding at a safepoint after a cancel rather than returning
// normally. Only meaningful once Completed is true.
func (fn *Fn) Cancelled() bool { return fn.ctx.unwound.Load() }

// Expired reports that the unwind was triggered by the task's hard
// completion deadline rather than a cancel request. Only meaningful
// once Cancelled is true.
func (fn *Fn) Expired() bool { return fn.ctx.expired.Load() }

// State reports the Fn's lifecycle state.
func (fn *Fn) State() FnState { return FnState(fn.state.Load()) }

// Ctx exposes the Fn's context (for inspection in tests/policies).
func (fn *Fn) Ctx() *Ctx { return fn.ctx }
