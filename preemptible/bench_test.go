package preemptible

import (
	"testing"
	"time"
)

// BenchmarkCheckpointUncontended measures the safepoint fast path: the
// per-iteration tax a task pays for being preemptible.
func BenchmarkCheckpointUncontended(b *testing.B) {
	rt, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	fn, err := rt.Launch(func(ctx *Ctx) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctx.Checkpoint()
		}
	}, time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	if !fn.Completed() {
		b.Fatal("benchmark task preempted")
	}
}

// BenchmarkLaunchCompleteRoundTrip measures fn_launch for a trivial
// task: goroutine handoff out and back.
func BenchmarkLaunchCompleteRoundTrip(b *testing.B) {
	rt, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	task := func(ctx *Ctx) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Launch(task, time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkYieldResume measures one preempt/resume cycle (fn_resume).
func BenchmarkYieldResume(b *testing.B) {
	rt, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	fn, err := rt.Launch(func(ctx *Ctx) {
		for {
			ctx.Yield()
		}
	}, time.Second)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn.Resume(time.Second)
	}
}
