package preemptible

import (
	"testing"
	"time"

	"repro/internal/chaos"
)

func TestWatchdogEscalatesToTerminal(t *testing.T) {
	// A persistent timer fault (chaos clock stalled forever) must drive
	// the watchdog through exactly MaxTimerRestarts futile restarts and
	// then to terminal degradation: no more restarts, Degraded stays
	// true permanently, and Terminal reports the escalation.
	ck := chaos.NewClock()
	rt, err := New(Config{
		Resolution:       200 * time.Microsecond,
		Clock:            ck,
		WatchdogInterval: time.Millisecond,
		StallThreshold:   4 * time.Millisecond,
		MaxTimerRestarts: 3,
		RestartWindow:    time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	ck.Stall() // never resumed: the fault is persistent
	waitUntil(t, 5*time.Second, rt.Terminal, "watchdog escalation to terminal")
	if !rt.Degraded() {
		t.Fatal("terminal runtime does not report Degraded")
	}
	if n := rt.TimerRestarts(); n != 3 {
		t.Fatalf("escalated after %d restarts, want exactly MaxTimerRestarts=3", n)
	}

	// Even if the tick source comes back, a terminal runtime must not
	// resurrect: the decision is final (zombie generations are killed,
	// Degraded never clears, the restart counter never moves again).
	restarts := rt.TimerRestarts()
	ck.Resume()
	time.Sleep(20 * time.Millisecond)
	if !rt.Terminal() || !rt.Degraded() {
		t.Fatal("terminal state cleared after the stall lifted")
	}
	if n := rt.TimerRestarts(); n != restarts {
		t.Fatalf("watchdog restarted after terminal (%d → %d)", restarts, n)
	}

	// Correctness survives: quanta are enforced cooperatively at
	// safepoints, so pool work still completes and still preempts.
	p := NewPool(rt, PoolConfig{Workers: 1, Quantum: 100 * time.Microsecond})
	if lat, _ := p.SubmitWait(func(ctx *Ctx) { spin(ctx, 2*time.Millisecond) }); lat < 0 {
		t.Fatalf("task on terminal runtime reported %v", lat)
	}
	p.Close()
	if p.Stats().Completed != 1 {
		t.Fatalf("stats: %+v", p.Stats())
	}
}

func TestWatchdogTransientStallsDoNotEscalate(t *testing.T) {
	// Restarts spread thinner than MaxTimerRestarts per window never
	// escalate: each transient stall is cured by its restart (the chaos
	// clock resumes), so the within-window count stays below the bound.
	ck := chaos.NewClock()
	rt, err := New(Config{
		Resolution:       200 * time.Microsecond,
		Clock:            ck,
		WatchdogInterval: time.Millisecond,
		StallThreshold:   4 * time.Millisecond,
		MaxTimerRestarts: 2,
		RestartWindow:    40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	for i := 0; i < 3; i++ {
		before := rt.TimerRestarts()
		ck.Stall()
		waitUntil(t, 2*time.Second, func() bool { return rt.TimerRestarts() > before },
			"watchdog restart")
		ck.Resume()
		waitUntil(t, 2*time.Second, func() bool { return !rt.Degraded() },
			"degraded to clear after transient stall")
		// Let the escalation window age past this restart before the
		// next fault.
		time.Sleep(50 * time.Millisecond)
	}
	if rt.Terminal() {
		t.Fatal("transient stalls escalated to terminal")
	}
	if n := rt.TimerRestarts(); n < 3 {
		t.Fatalf("expected 3 restarts, got %d", n)
	}
}
