package preemptible

import (
	"errors"
	"sync/atomic"
	"time"
)

// ErrCancelled is the outcome of a task killed by TaskHandle.Cancel:
// either evicted from the queue before execution or unwound at a
// safepoint mid-run. It is reported through TaskHandle.Err; the done
// callback observes CancelledLatency.
var ErrCancelled = errors.New("preemptible: task cancelled")

// ErrExpired is the outcome of a task dropped because its hard
// completion deadline (SubmitOptions.Expire) passed: shed at dequeue or
// unwound at a safepoint. Reported through TaskHandle.Err; the done
// callback observes ExpiredLatency.
var ErrExpired = errors.New("preemptible: task deadline expired")

// Latency sentinels passed to a submission's done callback when the
// task did not complete. Any negative latency means "not executed to
// completion"; the exact value says why.
const (
	// ShedLatency reports a task dropped because its pickup deadline
	// (SubmitTimeout) passed before a worker reached it.
	ShedLatency = -1 * time.Nanosecond
	// CancelledLatency reports a task killed by TaskHandle.Cancel:
	// evicted from the queue, or unwound at its next safepoint.
	CancelledLatency = -2 * time.Nanosecond
	// RejectedLatency reports a task refused at SubmitClass because its
	// class's admission gate was closed; it never queued.
	RejectedLatency = -3 * time.Nanosecond
	// FailedLatency reports a task that panicked mid-execution; the
	// panic was contained by the runtime (TaskHandle.Err carries the
	// captured TaskError) and the worker that ran it is unharmed.
	FailedLatency = -4 * time.Nanosecond
	// ExpiredLatency reports a task dropped because its hard completion
	// deadline (SubmitOptions.Expire) passed: either shed at dequeue
	// before it ever ran (TaskExpiredQueued) or unwound at a safepoint
	// mid-run (TaskExpiredExecuting). The work was doomed — its caller
	// had already given up — so finishing it would burn worker time for
	// a result nobody reads.
	ExpiredLatency = -5 * time.Nanosecond
)

// TaskState is a submitted task's lifecycle state, observable through
// TaskHandle.State.
type TaskState int32

const (
	// TaskQueued: waiting in the arrival queue or EDF heap, never run.
	TaskQueued TaskState = iota
	// TaskRunning: a worker is executing the task right now.
	TaskRunning
	// TaskPreempted: the task ran, was preempted at a safepoint, and
	// waits in the preempted list / EDF heap for a worker.
	TaskPreempted
	// TaskCompleted: the task finished normally.
	TaskCompleted
	// TaskShed: the pickup deadline passed; the task never executed.
	TaskShed
	// TaskCancelledQueued: Cancel evicted the task before it ever ran.
	TaskCancelledQueued
	// TaskCancelledExecuting: Cancel unwound the task at a safepoint
	// after it had started executing.
	TaskCancelledExecuting
	// TaskRejected: the class admission gate refused the submission; the
	// task never queued.
	TaskRejected
	// TaskFailed: the task panicked while executing; the runtime
	// contained the fault and recorded it (TaskHandle.Err).
	TaskFailed
	// TaskExpiredQueued: the hard completion deadline passed while the
	// task was still queued; it was dropped at dequeue, never executed.
	TaskExpiredQueued
	// TaskExpiredExecuting: the hard completion deadline passed after
	// the task started; it unwound at its next safepoint.
	TaskExpiredExecuting
)

func (s TaskState) String() string {
	switch s {
	case TaskQueued:
		return "queued"
	case TaskRunning:
		return "running"
	case TaskPreempted:
		return "preempted"
	case TaskCompleted:
		return "completed"
	case TaskShed:
		return "shed"
	case TaskCancelledQueued:
		return "cancelled-queued"
	case TaskCancelledExecuting:
		return "cancelled-executing"
	case TaskRejected:
		return "rejected"
	case TaskFailed:
		return "failed"
	case TaskExpiredQueued:
		return "expired-queued"
	case TaskExpiredExecuting:
		return "expired-executing"
	default:
		return "invalid"
	}
}

// Cancelled reports whether the state is one of the two cancelled
// outcomes.
func (s TaskState) Cancelled() bool {
	return s == TaskCancelledQueued || s == TaskCancelledExecuting
}

// Expired reports whether the state is one of the two
// deadline-expired outcomes.
func (s TaskState) Expired() bool {
	return s == TaskExpiredQueued || s == TaskExpiredExecuting
}

// taskState is the shared record between a queue entry, the executing
// Ctx, and the TaskHandle. status transitions are serialized by the
// pool's mutex; cancelReq is the lock-free flag the task's safepoints
// poll (the cancellation analog of the preemption flag).
type taskState struct {
	status    TaskState // guarded by Pool.mu
	class     Class     // set at submit, read-only afterwards
	cancelReq atomic.Uint32
	// expires is the hard completion deadline in unixnanos (0 = none),
	// set at submit and read-only afterwards. Workers consult it at
	// dequeue; the task's Ctx consults it at safepoints.
	expires int64
	done    func(time.Duration)
	// failure is the captured panic of a TaskFailed task (guarded by
	// Pool.mu, set exactly once when the status becomes TaskFailed).
	failure *TaskError
}

// TaskHandle identifies one submission for cancellation and outcome
// inspection. The zero value is invalid; handles come from
// Submit/SubmitDeadline/SubmitTimeout.
type TaskHandle struct {
	p  *Pool
	st *taskState
}

// State snapshots the task's lifecycle state.
func (h *TaskHandle) State() TaskState {
	h.p.mu.Lock()
	defer h.p.mu.Unlock()
	return h.st.status
}

// Err reports the task's terminal outcome: ErrCancelled after a cancel
// took effect, ErrExpired after the hard completion deadline dropped
// the task, the captured *TaskError after the task panicked, nil
// otherwise (including while still pending — pair with State for
// liveness).
func (h *TaskHandle) Err() error {
	h.p.mu.Lock()
	st, failure := h.st.status, h.st.failure
	h.p.mu.Unlock()
	switch {
	case st.Cancelled():
		return ErrCancelled
	case st.Expired():
		return ErrExpired
	case st == TaskFailed:
		return failure
	}
	return nil
}

// Cancel stops the task wherever it is in its lifecycle:
//
//   - Queued (never run): the task is evicted — it will never occupy a
//     worker. The queue entry is lazily deleted (a tombstone the next
//     pop skips, so EDF heap invariants hold) and done is invoked
//     immediately with CancelledLatency.
//   - Preempted (in queue mid-run): the cancel flag is raised; the next
//     worker to pick the task resumes it just far enough to unwind at
//     its safepoint, then reports done(CancelledLatency).
//   - Running: the cancel flag is raised; the task unwinds at its next
//     Checkpoint or Yield through the normal save/return path and
//     reports done(CancelledLatency). A task that reaches no further
//     safepoint completes normally — cancellation of executing work is
//     cooperative, exactly like preemption.
//
// Cancel returns true if the request was accepted (the task was still
// queued, preempted, or running), false if the task had already
// finished, been shed, or been cancelled. Cancel never blocks on task
// execution and is safe to call from any goroutine, once or many times.
func (h *TaskHandle) Cancel() bool {
	p, st := h.p, h.st
	p.mu.Lock()
	switch st.status {
	case TaskQueued:
		st.status = TaskCancelledQueued
		st.cancelReq.Store(1)
		p.cancelledQueued++
		p.perClass[st.class].CancelledQueued++
		p.tombstones++
		done := st.done
		p.mu.Unlock()
		if done != nil {
			done(CancelledLatency)
		}
		return true
	case TaskRunning, TaskPreempted:
		if st.cancelReq.Swap(1) == 1 {
			p.mu.Unlock()
			return false // already requested by an earlier Cancel
		}
		p.mu.Unlock()
		return true
	default:
		p.mu.Unlock()
		return false
	}
}
