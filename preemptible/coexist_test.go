package preemptible

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The paper's compatibility claim (§I, §III-C): applications using
// LibPreemptible coexist with traditional applications on the same
// host. The live analog: a preemptible pool keeps enforcing quanta and
// completing work while ordinary goroutines churn alongside it.
func TestCoexistsWithOrdinaryGoroutines(t *testing.T) {
	rt := newRT(t)
	p := NewPool(rt, PoolConfig{Workers: 1, Quantum: 2 * time.Millisecond})
	defer p.Close()

	// Traditional application: plain goroutines doing bursty work and
	// sleeping, unaware of the preemptible runtime.
	stop := make(chan struct{})
	var churnWG sync.WaitGroup
	var churned atomic.Uint64
	for g := 0; g < 3; g++ {
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			buf := make([]byte, 1024)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := range buf {
					buf[i] = byte(i)
				}
				churned.Add(1)
				time.Sleep(200 * time.Microsecond)
			}
		}()
	}

	// Preemptible side: long tasks that must still be preempted and
	// short tasks that must still finish promptly.
	var wg sync.WaitGroup
	wg.Add(1)
	p.Submit(func(ctx *Ctx) { spin(ctx, 25*time.Millisecond) },
		func(time.Duration) { wg.Done() })
	time.Sleep(3 * time.Millisecond)
	var shortLat time.Duration
	wg.Add(1)
	p.Submit(func(ctx *Ctx) {}, func(l time.Duration) { shortLat = l; wg.Done() })
	wg.Wait()
	close(stop)
	churnWG.Wait()

	if p.Stats().Preemptions == 0 {
		t.Fatal("quanta not enforced while coexisting")
	}
	if shortLat > 15*time.Millisecond {
		t.Fatalf("short task latency %v under coexistence", shortLat)
	}
	if churned.Load() == 0 {
		t.Fatal("traditional goroutines starved entirely")
	}
}
