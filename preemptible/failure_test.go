package preemptible

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLaunchContainsPanic: a panicking task ends in StateFailed with
// the panic value and stack captured; the runtime stays healthy.
func TestLaunchContainsPanic(t *testing.T) {
	rt := newRT(t)
	fn, err := rt.Launch(func(ctx *Ctx) {
		panic("kaboom")
	}, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !fn.Failed() {
		t.Fatalf("state = %v, want failed", fn.State())
	}
	if fn.Completed() {
		t.Fatal("failed Fn reports Completed")
	}
	terr := fn.Err()
	if terr == nil {
		t.Fatal("Err() = nil on failed Fn")
	}
	if terr.Value != "kaboom" {
		t.Fatalf("captured panic value %v, want kaboom", terr.Value)
	}
	if !bytes.Contains(terr.Stack, []byte("TestLaunchContainsPanic")) {
		t.Fatal("captured stack does not include the panic site")
	}
	if got, want := terr.Error(), "preemptible: task panicked: kaboom"; got != want {
		t.Fatalf("Error() = %q, want %q", got, want)
	}
	if rt.registered() != 0 {
		t.Fatalf("failed Fn left %d deadline words registered", rt.registered())
	}
	// The runtime is unharmed: a fresh Launch works.
	fn2, err := rt.Launch(func(ctx *Ctx) {}, time.Millisecond)
	if err != nil || !fn2.Completed() {
		t.Fatalf("Launch after contained panic: fn=%v err=%v", fn2.State(), err)
	}
}

// TestPanicAfterPreemption: a task that panics on a later quantum (after
// being preempted and resumed) still fails cleanly.
func TestPanicAfterPreemption(t *testing.T) {
	rt := newRT(t)
	hits := 0
	fn, err := rt.Launch(func(ctx *Ctx) {
		hits++
		ctx.Yield()
		hits++
		panic("second quantum")
	}, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fn.Failed() || fn.Completed() {
		t.Fatalf("state after first yield = %v, want preempted", fn.State())
	}
	fn.Resume(time.Millisecond)
	if !fn.Failed() {
		t.Fatalf("state = %v, want failed", fn.State())
	}
	if hits != 2 {
		t.Fatalf("task body ran %d segments, want 2", hits)
	}
	if fn.Err() == nil || fn.Err().Value != "second quantum" {
		t.Fatalf("Err() = %v", fn.Err())
	}
}

// TestResumeFailedFnPanics: Resume on a failed Fn is a scheduler bug
// and panics with a distinct message.
func TestResumeFailedFnPanics(t *testing.T) {
	rt := newRT(t)
	fn, err := rt.Launch(func(ctx *Ctx) { panic("x") }, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !fn.Failed() {
		t.Fatalf("state = %v, want failed", fn.State())
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Resume of failed Fn did not panic")
		}
		if r != "preemptible: Resume of failed Fn" {
			t.Fatalf("panic message %q", r)
		}
	}()
	fn.Resume(time.Millisecond)
}

// TestPoolContainsPanics: panicking tasks settle as Failed — done
// observes FailedLatency, the handle carries the TaskError, counters
// conserve work — and the workers survive to run later tasks.
func TestPoolContainsPanics(t *testing.T) {
	rt := newRT(t)
	var hookMu sync.Mutex
	var hookClasses []Class
	p := NewPool(rt, PoolConfig{Workers: 2, OnFailure: func(class Class, err *TaskError) {
		hookMu.Lock()
		hookClasses = append(hookClasses, class)
		hookMu.Unlock()
	}})
	defer p.Close()

	ch := make(chan time.Duration, 1)
	h, err := p.SubmitClass(ClassBE, func(ctx *Ctx) { panic(errors.New("bad block")) },
		func(l time.Duration) { ch <- l })
	if err != nil {
		t.Fatal(err)
	}
	if lat := <-ch; lat != FailedLatency {
		t.Fatalf("done latency %v, want FailedLatency", lat)
	}
	if got := h.State(); got != TaskFailed {
		t.Fatalf("state %v, want failed", got)
	}
	var terr *TaskError
	if !errors.As(h.Err(), &terr) {
		t.Fatalf("handle Err %v, want *TaskError", h.Err())
	}
	if fmt.Sprint(terr.Value) != "bad block" {
		t.Fatalf("captured value %v", terr.Value)
	}
	if h.Cancel() {
		t.Fatal("Cancel accepted on a failed task")
	}

	// Workers unharmed: ordinary work still completes on both classes.
	if lat, err := p.SubmitWait(func(ctx *Ctx) {}); err != nil || lat < 0 {
		t.Fatalf("pool broken after contained panic: lat=%v err=%v", lat, err)
	}

	st := p.Stats()
	if st.Failed != 1 || st.PerClass[ClassBE].Failed != 1 {
		t.Fatalf("failure counters: total=%d be=%d", st.Failed, st.PerClass[ClassBE].Failed)
	}
	be := st.PerClass[ClassBE]
	if be.Settled() != be.Submitted {
		t.Fatalf("BE conservation broken: %+v", be)
	}
	hookMu.Lock()
	defer hookMu.Unlock()
	if len(hookClasses) != 1 || hookClasses[0] != ClassBE {
		t.Fatalf("OnFailure saw %v, want [be]", hookClasses)
	}
}

// TestPoolPanicSitesProperty is the fuzzing matrix over panic sites:
// tasks panic before their first Checkpoint, mid-loop between
// safepoints, or inside a defer, interleaved with healthy tasks. After
// the storm the pool's workers and the timer service must be intact and
// every non-failed task must have completed.
func TestPoolPanicSitesProperty(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 7} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rt := newRT(t)
			p := NewPool(rt, PoolConfig{Workers: 4, Quantum: 100 * time.Microsecond})
			defer p.Close()
			rng := rand.New(rand.NewSource(seed))
			const n = 200
			var completed, failed atomic.Int64
			var wg sync.WaitGroup
			wantFail := 0
			for i := 0; i < n; i++ {
				site := rng.Intn(5) // 0,1 healthy; 2,3,4 panic sites
				var task Task
				switch site {
				case 0: // healthy, short
					task = func(ctx *Ctx) { ctx.Checkpoint() }
				case 1: // healthy, multi-quantum
					task = func(ctx *Ctx) {
						for j := 0; j < 50; j++ {
							ctx.Checkpoint()
						}
					}
				case 2: // panic before first Checkpoint
					wantFail++
					task = func(ctx *Ctx) { panic("pre-checkpoint") }
				case 3: // panic mid-loop, after several safepoints
					wantFail++
					task = func(ctx *Ctx) {
						for j := 0; j < 10; j++ {
							ctx.Checkpoint()
						}
						panic("mid-loop")
					}
				case 4: // panic inside a defer (after a normal-looking body)
					wantFail++
					task = func(ctx *Ctx) {
						defer func() { panic("in defer") }()
						ctx.Checkpoint()
					}
				}
				wg.Add(1)
				if _, err := p.Submit(task, func(l time.Duration) {
					if l == FailedLatency {
						failed.Add(1)
					} else if l >= 0 {
						completed.Add(1)
					}
					wg.Done()
				}); err != nil {
					t.Fatalf("submit %d: %v", i, err)
				}
			}
			wg.Wait()
			if got := failed.Load(); got != int64(wantFail) {
				t.Fatalf("failed = %d, want %d", got, wantFail)
			}
			if got := completed.Load(); got != int64(n-wantFail) {
				t.Fatalf("completed = %d, want %d", got, n-wantFail)
			}
			// Timer service intact: the runtime is not degraded and no
			// deadline words leaked.
			if rt.Degraded() {
				t.Fatal("timer service degraded after panic storm")
			}
			if rt.registered() != 0 {
				t.Fatalf("%d deadline words leaked", rt.registered())
			}
			// Worker count intact: all workers still pull work (more
			// concurrent barrier tasks than any strict subset could run).
			var barrier sync.WaitGroup
			release := make(chan struct{})
			var entered atomic.Int64
			for i := 0; i < 4; i++ {
				barrier.Add(1)
				if _, err := p.Submit(func(ctx *Ctx) {
					entered.Add(1)
					<-release
				}, func(time.Duration) { barrier.Done() }); err != nil {
					t.Fatal(err)
				}
			}
			deadline := time.Now().Add(2 * time.Second)
			for entered.Load() < 4 {
				if time.Now().After(deadline) {
					t.Fatalf("only %d of 4 workers alive after panic storm", entered.Load())
				}
				time.Sleep(time.Millisecond)
			}
			close(release)
			barrier.Wait()
			st := p.Stats()
			if st.Submitted != st.Completed+st.Failed {
				t.Fatalf("conservation broken: %+v", st)
			}
		})
	}
}

// TestPoolEDFContainsPanics: the EDF discipline settles failures the
// same way (heap stays consistent, later deadlines still run).
func TestPoolEDFContainsPanics(t *testing.T) {
	rt := newRT(t)
	p := NewPool(rt, PoolConfig{Workers: 1, Discipline: EDF})
	defer p.Close()
	now := time.Now()
	ch := make(chan time.Duration, 2)
	if _, err := p.SubmitDeadline(func(ctx *Ctx) { panic("edf") }, now.Add(time.Millisecond),
		func(l time.Duration) { ch <- l }); err != nil {
		t.Fatal(err)
	}
	if _, err := p.SubmitDeadline(func(ctx *Ctx) {}, now.Add(time.Hour),
		func(l time.Duration) { ch <- l }); err != nil {
		t.Fatal(err)
	}
	first, second := <-ch, <-ch
	if first != FailedLatency {
		t.Fatalf("earliest-deadline task latency %v, want FailedLatency", first)
	}
	if second < 0 {
		t.Fatalf("later task latency %v, want completion", second)
	}
}

// TestDrainCompletesInFlight: Drain with headroom lets queued and
// running work finish; no cancellation happens.
func TestDrainCompletesInFlight(t *testing.T) {
	rt := newRT(t)
	p := NewPool(rt, PoolConfig{Workers: 2, Quantum: time.Millisecond})
	var done atomic.Int64
	for i := 0; i < 40; i++ {
		if _, err := p.Submit(func(ctx *Ctx) {
			ctx.Checkpoint()
			done.Add(1)
		}, nil); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := p.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if done.Load() != 40 {
		t.Fatalf("Drain dropped work: %d of 40 done", done.Load())
	}
	if _, err := p.Submit(func(ctx *Ctx) {}, nil); err != ErrClosed {
		t.Fatalf("Submit after Drain: %v, want ErrClosed", err)
	}
	st := p.Stats()
	if st.Cancelled() != 0 {
		t.Fatalf("graceful drain cancelled %d tasks", st.Cancelled())
	}
}

// TestDrainDeadlineCancelsStragglers: when the deadline fires, queued
// work is evicted and running work unwinds at its next safepoint; Drain
// returns ctx.Err() and every done callback has fired.
func TestDrainDeadlineCancelsStragglers(t *testing.T) {
	rt := newRT(t)
	// A one-second quantum keeps the running straggler on the sole
	// worker (no preemption), so the queued stragglers stay queued.
	p := NewPool(rt, PoolConfig{Workers: 1, Quantum: time.Second})
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	lats := make(chan time.Duration, 3)
	// Running straggler: holds the only worker, checkpoints while
	// blocked so the post-deadline cancel can unwind it.
	if _, err := p.Submit(func(ctx *Ctx) {
		close(started)
		for {
			select {
			case <-release:
				return
			default:
			}
			ctx.Checkpoint()
		}
	}, func(l time.Duration) { lats <- l }); err != nil {
		t.Fatal(err)
	}
	<-started
	// Queued stragglers: never reach a worker before the deadline.
	for i := 0; i < 2; i++ {
		if _, err := p.Submit(func(ctx *Ctx) { t.Error("queued straggler ran") },
			func(l time.Duration) { lats <- l }); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := p.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain err = %v, want DeadlineExceeded", err)
	}
	for i := 0; i < 3; i++ {
		if l := <-lats; l != CancelledLatency {
			t.Fatalf("straggler %d latency %v, want CancelledLatency", i, l)
		}
	}
	st := p.Stats()
	if st.CancelledQueued != 2 || st.CancelledExecuting != 1 {
		t.Fatalf("cancel buckets: %+v", st)
	}
}

// TestDrainThenCloseIdempotent: Close after Drain (and double Close)
// is safe.
func TestDrainThenCloseIdempotent(t *testing.T) {
	rt := newRT(t)
	p := NewPool(rt, PoolConfig{Workers: 1, Adaptive: &AdaptiveConfig{
		LHigh: 1e12, LLow: 1e11,
		K1: time.Millisecond, K2: time.Millisecond, K3: time.Millisecond,
		TMin: time.Millisecond, TMax: 50 * time.Millisecond,
		QThreshold: 1 << 30, Period: 5 * time.Millisecond,
	}})
	if err := p.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	p.Close()
	p.Close()
}
