package preemptible

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
)

// waitUntil polls cond every millisecond until it holds or the deadline
// passes.
func waitUntil(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", msg)
}

func TestWatchdogRestartsStalledTimer(t *testing.T) {
	// Wedge the timer service with a chaos clock and verify the
	// watchdog: detects the stall, marks the runtime Degraded, restarts
	// the loop with a fresh ticker, and — once the stall lifts —
	// timer-delivered preemption resumes. Delivery is probed with a
	// blocked Fn that never checkpoints: only the timer loop can raise
	// its preemption flag, so the flag transitioning 0→1 is proof the
	// restarted loop is polling again (this holds even on GOMAXPROCS=1,
	// where spinning tasks usually beat the timer to the flag).
	ck := chaos.NewClock()
	rt, err := New(Config{
		Resolution:       200 * time.Microsecond,
		Clock:            ck,
		WatchdogInterval: time.Millisecond,
		StallThreshold:   4 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	ck.Stall()
	waitUntil(t, 2*time.Second, func() bool { return rt.TimerRestarts() > 0 },
		"watchdog restart")
	if !rt.Degraded() {
		t.Fatal("runtime not Degraded after watchdog detected the stall")
	}
	// Let the killed loop generation drain any buffered tick.
	time.Sleep(5 * time.Millisecond)

	ctxCh := make(chan *Ctx, 1)
	release := make(chan struct{})
	go rt.Launch(func(ctx *Ctx) { //nolint:errcheck
		ctxCh <- ctx
		<-release
	}, 100*time.Microsecond)
	ctx := <-ctxCh

	time.Sleep(10 * time.Millisecond)
	if ctx.Preempted() {
		t.Fatal("preemption flag raised while the timer service was stalled")
	}

	ck.Resume()
	waitUntil(t, 2*time.Second, func() bool { return !rt.Degraded() },
		"degraded flag to clear after stall lifted")
	waitUntil(t, 2*time.Second, ctx.Preempted,
		"timer-delivered preemption to resume after restart")
	close(release)

	if rt.TimerPreemptions() == 0 {
		t.Fatal("timer flag counter did not move")
	}
	if ck.Tickers() < 2 {
		t.Fatalf("watchdog restart did not create a fresh ticker: %d", ck.Tickers())
	}
}

func TestPoolSurvivesTimerStall(t *testing.T) {
	// A pool mid-flight across a timer stall + watchdog restart loses
	// nothing: every Fn completes, cooperatively if need be.
	ck := chaos.NewClock()
	rt, err := New(Config{
		Resolution:       200 * time.Microsecond,
		Clock:            ck,
		WatchdogInterval: time.Millisecond,
		StallThreshold:   4 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	p := NewPool(rt, PoolConfig{Workers: 2, Quantum: 100 * time.Microsecond})
	spin := func(ctx *Ctx) {
		for end := time.Now().Add(2 * time.Millisecond); time.Now().Before(end); {
			busy := time.Now().Add(300 * time.Microsecond)
			for time.Now().Before(busy) {
			}
			ctx.Checkpoint()
		}
	}
	var done atomic.Uint64
	const tasks = 16
	for i := 0; i < tasks; i++ {
		p.Submit(spin, func(time.Duration) { done.Add(1) })
	}

	ck.Stall()
	waitUntil(t, 2*time.Second, func() bool { return rt.TimerRestarts() > 0 },
		"watchdog restart")
	ck.Resume()

	waitUntil(t, 10*time.Second, func() bool { return done.Load() == tasks },
		"all Fns to complete across the stall")
	p.Close()
	st := p.Stats()
	if st.Completed != tasks {
		t.Fatalf("completed %d of %d", st.Completed, tasks)
	}
	if st.Preemptions == 0 {
		t.Fatal("quanta were not enforced at all during the stall")
	}
}

func TestWatchdogQuietOnHealthyTimer(t *testing.T) {
	rt, err := New(Config{
		Resolution:       100 * time.Microsecond,
		WatchdogInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	time.Sleep(30 * time.Millisecond)
	if n := rt.TimerRestarts(); n != 0 {
		t.Fatalf("watchdog restarted a healthy timer %d times", n)
	}
	if rt.Degraded() {
		t.Fatal("healthy runtime reports Degraded")
	}
}

func TestLaunchCloseRace(t *testing.T) {
	// Hammer concurrent Launch and Close: Launch must either win (task
	// runs) or lose with ErrClosed — never panic, never leave a ctx
	// registered with the dead timer service.
	for iter := 0; iter < 30; iter++ {
		rt, err := New(Config{Resolution: 50 * time.Microsecond, WatchdogInterval: -1})
		if err != nil {
			t.Fatal(err)
		}
		var ran atomic.Uint64
		start := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 50; i++ {
					fn, err := rt.Launch(func(ctx *Ctx) { ran.Add(1) }, time.Millisecond)
					if err != nil {
						if err != ErrClosed {
							t.Errorf("Launch: %v", err)
						}
						return
					}
					if !fn.Completed() {
						fn.Resume(time.Millisecond)
					}
				}
			}()
		}
		close(start)
		rt.Close()
		wg.Wait()
		if n := rt.registered(); n != 0 {
			t.Fatalf("iter %d: %d ctxs leaked registered after Close", iter, n)
		}
		if rt.Launched() != ran.Load() {
			t.Fatalf("iter %d: launched %d but ran %d", iter, rt.Launched(), ran.Load())
		}
	}
}

func TestLaunchWithDeadlineAdmission(t *testing.T) {
	rt, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	if _, err := rt.LaunchWithDeadline(func(*Ctx) {}, 0, time.Now().Add(-time.Millisecond)); err != ErrDeadlineExpired {
		t.Fatalf("expired deadline: got %v, want ErrDeadlineExpired", err)
	}
	ran := false
	fn, err := rt.LaunchWithDeadline(func(*Ctx) { ran = true }, 0, time.Now().Add(time.Hour))
	if err != nil || !fn.Completed() || !ran {
		t.Fatalf("future deadline: err=%v completed=%v ran=%v", err, fn.Completed(), ran)
	}
	// Zero deadline means no admission control.
	if _, err := rt.LaunchWithDeadline(func(*Ctx) {}, 0, time.Time{}); err != nil {
		t.Fatalf("zero deadline: %v", err)
	}
}

func TestPoolDegradedRunsCooperatively(t *testing.T) {
	// Close the runtime under a live pool: Launch starts failing with
	// ErrClosed, and the pool's graceful-degradation path runs every
	// task cooperatively instead of losing it.
	rt, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(rt, PoolConfig{Workers: 2})
	rt.Close()

	const tasks = 20
	var done atomic.Uint64
	for i := 0; i < tasks; i++ {
		p.Submit(func(ctx *Ctx) {
			ctx.Checkpoint() // must be a no-op, not a deadlock
			ctx.Yield()      // likewise
			done.Add(1)
		}, func(time.Duration) {})
	}
	waitUntil(t, 2*time.Second, func() bool { return done.Load() == tasks },
		"degraded tasks to finish")
	p.Close()
	st := p.Stats()
	if st.Completed != tasks || st.DegradedRuns != tasks {
		t.Fatalf("completed=%d degradedRuns=%d, want %d/%d", st.Completed, st.DegradedRuns, tasks, tasks)
	}
}

func TestPoolSubmitTimeoutSheds(t *testing.T) {
	rt, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	p := NewPool(rt, PoolConfig{Workers: 1})
	defer p.Close()

	// Block the single worker on a task that holds its slot until
	// released (no checkpoints, so no preemption).
	release := make(chan struct{})
	blocked := make(chan struct{})
	p.Submit(func(*Ctx) {
		close(blocked)
		<-release
	}, nil)
	<-blocked

	const shedN = 5
	lats := make(chan time.Duration, shedN)
	for i := 0; i < shedN; i++ {
		p.SubmitTimeout(func(*Ctx) { t.Error("shed task executed") },
			5*time.Millisecond, func(l time.Duration) { lats <- l })
	}
	time.Sleep(20 * time.Millisecond) // let every pickup deadline lapse
	close(release)

	for i := 0; i < shedN; i++ {
		if l := <-lats; l >= 0 {
			t.Fatalf("shed task reported latency %v, want -1", l)
		}
	}
	waitUntil(t, time.Second, func() bool { return p.Stats().Shed == shedN },
		"shed counter")
	st := p.Stats()
	if st.Shed != shedN || st.Completed != 1 {
		t.Fatalf("shed=%d completed=%d, want %d/1", st.Shed, st.Completed, shedN)
	}
}
