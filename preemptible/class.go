package preemptible

import (
	"fmt"
	"time"
)

// Class labels a submission's service class, mirroring the paper's
// colocation contract (§VI): latency-critical (LC) work is protected,
// best-effort (BE) work soaks spare cycles and is the first to be
// rejected or evicted under pressure. Class-unaware submissions
// (Submit, SubmitTimeout, SubmitDeadline) default to ClassLC, which
// preserves their historical behavior exactly.
type Class int

const (
	// ClassLC is latency-critical work (e.g. KV operations).
	ClassLC Class = iota
	// ClassBE is best-effort work (e.g. compression blocks).
	ClassBE

	// NumClasses is the number of service classes (for per-class
	// counter arrays).
	NumClasses = 2
)

func (c Class) String() string {
	switch c {
	case ClassLC:
		return "lc"
	case ClassBE:
		return "be"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

func (c Class) valid() bool { return c >= 0 && c < NumClasses }

// ClassStats is one class's slice of the pool counters. Work is
// conserved per class: once the pool is idle,
//
//	Submitted = Completed + Rejected + Shed + Failed + Cancelled() + Expired()
//
// holds exactly — every submission lands in one terminal bucket.
type ClassStats struct {
	// Submitted counts SubmitClass calls for the class (including ones
	// the admission gate refused).
	Submitted uint64
	// Completed counts tasks that ran to completion.
	Completed uint64
	// Rejected counts submissions refused at SubmitClass because the
	// class's admission gate was closed (SetClassAdmission); the done
	// callback observes RejectedLatency and the task never queues.
	Rejected uint64
	// Shed counts tasks dropped without executing: pickup-deadline
	// sheds (SubmitTimeout) and queued-work evictions (EvictClass).
	Shed uint64
	// CancelledQueued/CancelledExecuting mirror the pool-wide buckets.
	CancelledQueued, CancelledExecuting uint64
	// ExpiredQueued/ExpiredExecuting mirror the pool-wide deadline-expiry
	// buckets (SubmitOptions.Expire): dropped at dequeue without ever
	// running, and unwound at a safepoint mid-run, respectively.
	ExpiredQueued, ExpiredExecuting uint64
	// Failed counts tasks of the class that panicked mid-execution; the
	// runtime contained each fault and the done callback observed
	// FailedLatency.
	Failed uint64
}

// Cancelled is the total of both cancellation buckets.
func (s ClassStats) Cancelled() uint64 { return s.CancelledQueued + s.CancelledExecuting }

// Expired is the total of both deadline-expiry buckets.
func (s ClassStats) Expired() uint64 { return s.ExpiredQueued + s.ExpiredExecuting }

// Settled is the total of every terminal bucket; Submitted − Settled
// is the work still in flight.
func (s ClassStats) Settled() uint64 {
	return s.Completed + s.Rejected + s.Shed + s.Failed + s.Cancelled() + s.Expired()
}

// SubmitClass is Submit with an explicit service class. If the class's
// admission gate is closed (SetClassAdmission) the task is refused
// without queuing: done observes RejectedLatency and the handle
// reports TaskRejected. Returns ErrClosed after Close/Drain.
func (p *Pool) SubmitClass(class Class, task Task, done func(latency time.Duration)) (*TaskHandle, error) {
	return p.submitOpts(class, task, time.Time{}, time.Time{}, false, done)
}

// SubmitClassTimeout is SubmitTimeout with an explicit service class.
func (p *Pool) SubmitClassTimeout(class Class, task Task, timeout time.Duration, done func(latency time.Duration)) (*TaskHandle, error) {
	if timeout <= 0 {
		panic("preemptible: non-positive timeout")
	}
	return p.submitOpts(class, task, time.Now().Add(timeout), time.Time{}, false, done)
}

// SetClassAdmission opens or closes a class's admission gate. While
// closed, SubmitClass refuses the class's tasks at the door (counted
// in ClassStats.Rejected) — the pool-level half of a brownout: callers
// that cannot classify at a higher layer still get BE-first rejection.
// Gates start open; closing a gate never touches already-queued work
// (use EvictClass for that).
func (p *Pool) SetClassAdmission(class Class, admit bool) {
	if !class.valid() {
		panic(fmt.Sprintf("preemptible: invalid class %d", class))
	}
	p.mu.Lock()
	p.gateClosed[class] = !admit
	p.mu.Unlock()
}

// EvictClass sheds every queued, never-run task of the class: FIFO
// arrivals and EDF-queued fresh tasks are tombstoned in place (lazy
// delete, heap invariants untouched) and their done callbacks observe
// ShedLatency. Preempted mid-run tasks are not touched — eviction is
// for work that has consumed nothing yet; killing started BE work is a
// policy the caller can express with TaskHandle.Cancel. Returns how
// many tasks were evicted.
func (p *Pool) EvictClass(class Class) int {
	if !class.valid() {
		panic(fmt.Sprintf("preemptible: invalid class %d", class))
	}
	var dones []func(time.Duration)
	p.mu.Lock()
	evict := func(st *taskState, done func(time.Duration)) {
		st.status = TaskShed
		p.shed++
		p.perClass[class].Shed++
		p.tombstones++
		if done != nil {
			dones = append(dones, done)
		}
	}
	for i := p.arrHead; i < len(p.arrivals); i++ {
		a := &p.arrivals[i]
		if a.st != nil && a.st.status == TaskQueued && a.st.class == class {
			evict(a.st, a.done)
		}
	}
	for _, it := range p.edf {
		if it.task != nil && it.st != nil && it.st.status == TaskQueued && it.st.class == class {
			evict(it.st, it.done)
		}
	}
	p.mu.Unlock()
	for _, d := range dones {
		d(ShedLatency)
	}
	return len(dones)
}

// OldestWait reports how long the oldest queued, never-run task has
// been waiting at time now (0 when nothing is queued) — the queue-delay
// signal for admission and brownout controllers.
func (p *Pool) OldestWait(now time.Time) time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	var oldest time.Time
	for i := p.arrHead; i < len(p.arrivals); i++ {
		a := &p.arrivals[i]
		if a.st != nil && a.st.status == TaskQueued {
			oldest = a.arrival
			break // FIFO arrivals are in arrival order
		}
	}
	for _, it := range p.edf {
		if it.task != nil && it.st != nil && it.st.status == TaskQueued &&
			(oldest.IsZero() || it.arrival.Before(oldest)) {
			oldest = it.arrival
		}
	}
	if oldest.IsZero() {
		return 0
	}
	d := now.Sub(oldest)
	if d < 0 {
		return 0
	}
	return d
}
