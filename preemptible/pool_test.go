package preemptible

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsTasks(t *testing.T) {
	rt := newRT(t)
	p := NewPool(rt, PoolConfig{Workers: 4, Quantum: time.Millisecond})
	var done atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		p.Submit(func(ctx *Ctx) { done.Add(1) }, func(time.Duration) { wg.Done() })
	}
	wg.Wait()
	p.Close()
	if done.Load() != 100 {
		t.Fatalf("done = %d", done.Load())
	}
	st := p.Stats()
	if st.Completed != 100 || st.Submitted != 100 {
		t.Fatalf("stats: %+v", st)
	}
	if st.P99 <= 0 || st.Mean <= 0 {
		t.Fatalf("latency stats empty: %+v", st)
	}
}

func TestPoolSubmitWait(t *testing.T) {
	rt := newRT(t)
	p := NewPool(rt, PoolConfig{Workers: 2})
	defer p.Close()
	lat, _ := p.SubmitWait(func(ctx *Ctx) { time.Sleep(time.Millisecond) })
	if lat < time.Millisecond {
		t.Fatalf("latency = %v", lat)
	}
}

func TestPoolPreemptsLongTasks(t *testing.T) {
	rt := newRT(t)
	p := NewPool(rt, PoolConfig{Workers: 1, Quantum: time.Millisecond})
	var wg sync.WaitGroup
	wg.Add(1)
	// A long task on the single worker...
	start := time.Now()
	p.Submit(func(ctx *Ctx) { spin(ctx, 30*time.Millisecond) }, func(time.Duration) { wg.Done() })
	// ...must not head-of-line block a short task for its full 30ms.
	var shortLat time.Duration
	wg.Add(1)
	time.Sleep(2 * time.Millisecond)
	p.Submit(func(ctx *Ctx) {}, func(l time.Duration) { shortLat = l; wg.Done() })
	wg.Wait()
	elapsed := time.Since(start)
	p.Close()
	if shortLat > elapsed/2 {
		t.Fatalf("short task waited %v of %v: HoL blocking not relieved", shortLat, elapsed)
	}
	if p.Stats().Preemptions == 0 {
		t.Fatal("long task never preempted")
	}
}

func TestPoolQuantumControls(t *testing.T) {
	rt := newRT(t)
	p := NewPool(rt, PoolConfig{Workers: 1, Quantum: 5 * time.Millisecond})
	defer p.Close()
	if p.Quantum() != 5*time.Millisecond {
		t.Fatal("initial quantum wrong")
	}
	p.SetQuantum(time.Millisecond)
	if p.Quantum() != time.Millisecond {
		t.Fatal("SetQuantum ignored")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.SetQuantum(0)
}

func TestPoolAdaptiveControllerAdjusts(t *testing.T) {
	rt := newRT(t)
	p := NewPool(rt, PoolConfig{
		Workers: 2,
		Quantum: 10 * time.Millisecond,
		Adaptive: &AdaptiveConfig{
			LHigh: 1e12, LLow: 1e11, // everything is "low load"
			K1: time.Millisecond, K2: time.Millisecond, K3: 5 * time.Millisecond,
			TMin: time.Millisecond, TMax: 50 * time.Millisecond,
			QThreshold: 1 << 30,
			Period:     20 * time.Millisecond,
		},
	})
	defer p.Close()
	// Trickle of short tasks: light-tailed, low load → quantum must rise.
	for i := 0; i < 10; i++ {
		p.SubmitWait(func(ctx *Ctx) {})
		time.Sleep(5 * time.Millisecond)
	}
	deadline := time.Now().Add(2 * time.Second)
	for p.Quantum() <= 10*time.Millisecond {
		if time.Now().After(deadline) {
			t.Fatalf("controller never raised the quantum (still %v)", p.Quantum())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestPoolSubmitNilPanics(t *testing.T) {
	rt := newRT(t)
	p := NewPool(rt, PoolConfig{Workers: 1})
	defer p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Submit(nil, nil)
}

func TestPoolZeroWorkersPanics(t *testing.T) {
	rt := newRT(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPool(rt, PoolConfig{Workers: 0})
}

func TestPoolSubmitAfterCloseReturnsErrClosed(t *testing.T) {
	rt := newRT(t)
	p := NewPool(rt, PoolConfig{Workers: 1})
	p.Close()
	ran := false
	h, err := p.Submit(func(*Ctx) { ran = true }, func(time.Duration) { ran = true })
	if err != ErrClosed {
		t.Fatalf("Submit after Close: err = %v, want ErrClosed", err)
	}
	if h != nil {
		t.Fatalf("Submit after Close returned a handle: %v", h)
	}
	if _, err := p.SubmitClass(ClassBE, func(*Ctx) { ran = true }, nil); err != ErrClosed {
		t.Fatalf("SubmitClass after Close: err = %v, want ErrClosed", err)
	}
	if _, err := p.SubmitDeadline(func(*Ctx) { ran = true }, time.Now().Add(time.Second), nil); err != ErrClosed {
		t.Fatalf("SubmitDeadline after Close: err = %v, want ErrClosed", err)
	}
	if _, err := p.SubmitTimeout(func(*Ctx) { ran = true }, time.Second, nil); err != ErrClosed {
		t.Fatalf("SubmitTimeout after Close: err = %v, want ErrClosed", err)
	}
	if _, err := p.SubmitWait(func(*Ctx) { ran = true }); err != ErrClosed {
		t.Fatalf("SubmitWait after Close: err = %v, want ErrClosed", err)
	}
	if ran {
		t.Fatal("a refused submission ran its task or done callback")
	}
}

func TestPoolCloseDrainsQueuedWork(t *testing.T) {
	rt := newRT(t)
	p := NewPool(rt, PoolConfig{Workers: 2, Quantum: time.Millisecond})
	var done atomic.Int64
	for i := 0; i < 50; i++ {
		p.Submit(func(ctx *Ctx) { done.Add(1) }, nil)
	}
	p.Close()
	if done.Load() != 50 {
		t.Fatalf("Close dropped work: %d of 50 done", done.Load())
	}
}

func TestPoolConcurrentSubmitters(t *testing.T) {
	rt := newRT(t)
	p := NewPool(rt, PoolConfig{Workers: 4, Quantum: time.Millisecond})
	var wg sync.WaitGroup
	var done atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var inner sync.WaitGroup
				inner.Add(1)
				p.Submit(func(ctx *Ctx) {
					done.Add(1)
					ctx.Checkpoint()
				}, func(time.Duration) { inner.Done() })
				inner.Wait()
			}
		}()
	}
	wg.Wait()
	p.Close()
	if done.Load() != 400 {
		t.Fatalf("done = %d", done.Load())
	}
}
