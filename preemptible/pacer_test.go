package preemptible

import (
	"math"
	"testing"
	"time"
)

func TestPacerRateConformance(t *testing.T) {
	// 2 kHz pacing (500µs gaps): achievable with sleep+spin even on a
	// loaded CI box.
	p, err := NewPacer(2000)
	if err != nil {
		t.Fatal(err)
	}
	if p.Gap() != 500*time.Microsecond {
		t.Fatalf("gap = %v", p.Gap())
	}
	const n = 200
	start := p.Wait()
	var last time.Time = start
	var sumAbsErr float64
	for i := 1; i < n; i++ {
		now := p.Wait()
		gap := now.Sub(last)
		sumAbsErr += math.Abs(float64(gap - 500*time.Microsecond))
		last = now
	}
	if p.Emitted() != n {
		t.Fatalf("emitted %d", p.Emitted())
	}
	elapsed := last.Sub(start)
	want := time.Duration(n-1) * 500 * time.Microsecond
	// Absolute schedule: total duration within 5% even if single gaps
	// jitter.
	if elapsed < want*95/100 || elapsed > want*110/100 {
		t.Fatalf("elapsed %v for %d gaps, want ~%v", elapsed, n-1, want)
	}
}

func TestPacerShortStallCatchesUp(t *testing.T) {
	// A stall of a few gaps is absorbed by the absolute schedule: late
	// emissions release promptly (catch-up), keeping the average rate.
	p, err := NewPacer(1000) // 1ms gaps
	if err != nil {
		t.Fatal(err)
	}
	start := p.Wait()
	time.Sleep(3 * time.Millisecond)
	for i := 0; i < 5; i++ {
		p.Wait()
	}
	elapsed := time.Since(start)
	// 6 emissions over a 5ms nominal schedule: catch-up keeps us near it.
	if elapsed > 9*time.Millisecond {
		t.Fatalf("no catch-up after short stall: %v", elapsed)
	}
}

func TestPacerSevereStallRestartsSchedule(t *testing.T) {
	p, err := NewPacer(1000) // 1ms gaps
	if err != nil {
		t.Fatal(err)
	}
	p.Wait()
	// Fall behind by far more than the 10-gap restart threshold.
	time.Sleep(30 * time.Millisecond)
	a := p.Wait() // immediate (late)
	b := p.Wait() // schedule restarted: must NOT burst
	if gap := b.Sub(a); gap < 500*time.Microsecond {
		t.Fatalf("post-stall burst: consecutive waits %v apart", gap)
	}
}

func TestPacerValidation(t *testing.T) {
	if _, err := NewPacer(0); err == nil {
		t.Fatal("expected error")
	}
	if _, err := NewPacer(-5); err == nil {
		t.Fatal("expected error")
	}
}
