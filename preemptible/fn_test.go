package preemptible

import (
	"sync/atomic"
	"testing"
	"time"
)

func newRT(t *testing.T) *Runtime {
	t.Helper()
	rt, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

// spin burns CPU for roughly d, checkpointing frequently.
func spin(ctx *Ctx, d time.Duration) {
	end := time.Now().Add(d)
	for time.Now().Before(end) {
		for i := 0; i < 50; i++ {
			_ = i * i
		}
		ctx.Checkpoint()
	}
}

func TestLaunchRunsToCompletion(t *testing.T) {
	rt := newRT(t)
	ran := false
	fn, err := rt.Launch(func(ctx *Ctx) { ran = true }, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("task did not run before Launch returned")
	}
	if !fn.Completed() || fn.State() != StateCompleted {
		t.Fatal("Fn not completed")
	}
	if fn.Preemptions != 0 {
		t.Fatal("short task was preempted")
	}
	if rt.Launched() != 1 {
		t.Fatalf("Launched = %d", rt.Launched())
	}
}

func TestQuantumExpiryPreempts(t *testing.T) {
	rt := newRT(t)
	fn, err := rt.Launch(func(ctx *Ctx) { spin(ctx, 20*time.Millisecond) }, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fn.Completed() {
		t.Fatal("20ms task completed within 1ms quantum")
	}
	if fn.State() != StatePreempted {
		t.Fatalf("state = %v", fn.State())
	}
	resumes := 0
	for !fn.Completed() {
		fn.Resume(5 * time.Millisecond)
		resumes++
		if resumes > 100 {
			t.Fatal("task never completed")
		}
	}
	if fn.Preemptions < 2 {
		t.Fatalf("preemptions = %d, want several", fn.Preemptions)
	}
	if rt.Preemptions() == 0 {
		t.Fatal("runtime preemption counter never moved")
	}
}

func TestVoluntaryYield(t *testing.T) {
	rt := newRT(t)
	step := 0
	fn, err := rt.Launch(func(ctx *Ctx) {
		step = 1
		ctx.Yield()
		step = 2
	}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if fn.Completed() || step != 1 {
		t.Fatalf("yield did not return control: step=%d completed=%v", step, fn.Completed())
	}
	fn.Resume(time.Second)
	if !fn.Completed() || step != 2 {
		t.Fatal("resume after yield failed")
	}
}

func TestResumeCompletedPanics(t *testing.T) {
	rt := newRT(t)
	fn, _ := rt.Launch(func(ctx *Ctx) {}, time.Second)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn.Resume(time.Second)
}

func TestLaunchNilTaskPanics(t *testing.T) {
	rt := newRT(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	rt.Launch(nil, 0) //nolint:errcheck
}

func TestLaunchAfterClose(t *testing.T) {
	rt, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	rt.Close()
	rt.Close() // idempotent
	if _, err := rt.Launch(func(*Ctx) {}, 0); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestCtxObservability(t *testing.T) {
	rt := newRT(t)
	var sawDeadline atomic.Bool
	fn, _ := rt.Launch(func(ctx *Ctx) {
		if !ctx.Deadline().IsZero() {
			sawDeadline.Store(true)
		}
		ctx.Checkpoint()
	}, time.Second)
	if !fn.Completed() {
		t.Fatal("not completed")
	}
	if !sawDeadline.Load() {
		t.Fatal("deadline word not armed during execution")
	}
	if fn.Ctx().Checkpoints() == 0 {
		t.Fatal("checkpoint counter broken")
	}
	if fn.Ctx().Deadline() != (time.Time{}) {
		t.Fatal("deadline not cleared at completion")
	}
}

func TestManyFnsInterleaved(t *testing.T) {
	rt := newRT(t)
	const n = 16
	var fns []*Fn
	var counters [n]int
	for i := 0; i < n; i++ {
		i := i
		fn, err := rt.Launch(func(ctx *Ctx) {
			for k := 0; k < 3; k++ {
				counters[i]++
				ctx.Yield()
			}
		}, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		fns = append(fns, fn)
	}
	// Round-robin until all done (the Fig. 7 scheduler).
	for live := n; live > 0; {
		for _, fn := range fns {
			if !fn.Completed() {
				fn.Resume(time.Second)
				if fn.Completed() {
					live--
				}
			}
		}
	}
	for i, c := range counters {
		if c != 3 {
			t.Fatalf("task %d ran %d rounds", i, c)
		}
	}
}

func TestFnStateString(t *testing.T) {
	for _, s := range []FnState{StatePreempted, StateRunning, StateCompleted, FnState(9)} {
		if s.String() == "" {
			t.Fatal("empty state string")
		}
	}
}

func TestPreemptedFlagVisible(t *testing.T) {
	rt := newRT(t)
	var observed atomic.Bool
	// Spin until the timer thread marks us preempted; the absolute
	// deadline only bounds the test when delivery never happens (a
	// loaded machine can starve the timer goroutine well past the
	// quantum, so give it a generous window).
	fn, _ := rt.Launch(func(ctx *Ctx) {
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) && !observed.Load() {
			if ctx.Preempted() {
				observed.Store(true)
				ctx.Checkpoint() // actually take the preemption
			}
		}
	}, 2*time.Millisecond)
	for !fn.Completed() {
		fn.Resume(2 * time.Millisecond)
	}
	if !observed.Load() {
		t.Fatal("Preempted flag never observed despite 2ms quanta over 2s of work")
	}
}
