package preemptible

import (
	"container/heap"
	"time"
)

// Discipline selects the Pool's queue ordering.
type Discipline int

const (
	// FIFO is the paper's default two-level discipline: fresh arrivals
	// first (in order), then the preempted list (in order).
	FIFO Discipline = iota
	// EDF orders all runnable work — fresh and preempted alike — by
	// deadline (earliest first; deadline-free work last). Use with
	// SubmitDeadline to express per-request SLOs (§III-B).
	EDF
)

// edfItem is one unit of EDF-ordered work: either a fresh task or a
// preempted Fn. st links the item to its submission record so
// TaskHandle.Cancel can tombstone it in place (lazy delete — the heap
// is never spliced, so its invariants hold).
type edfItem struct {
	task     Task
	fn       *Fn
	st       *taskState
	arrival  time.Time
	deadline time.Time // zero = none
	// expire marks deadline as a hard completion deadline
	// (SubmitOptions.Expire): a worker popping the item after the
	// deadline drops it as expired instead of running it.
	expire bool
	done   func(time.Duration)
	seq    uint64
}

// edfQueue is a deadline-ordered heap.
type edfQueue []*edfItem

func (q edfQueue) Len() int { return len(q) }

func (q edfQueue) Less(i, j int) bool {
	di, dj := q[i].deadline, q[j].deadline
	switch {
	case di.IsZero() && dj.IsZero():
		return q[i].seq < q[j].seq
	case di.IsZero():
		return false
	case dj.IsZero():
		return true
	case !di.Equal(dj):
		return di.Before(dj)
	default:
		return q[i].seq < q[j].seq
	}
}

func (q edfQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *edfQueue) Push(x any) { *q = append(*q, x.(*edfItem)) }

func (q *edfQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// SubmitDeadline enqueues a task carrying an SLO deadline. Under the
// EDF discipline the deadline orders execution; under FIFO it is
// carried but ignored. done (optional) receives the sojourn latency.
// The returned handle cancels the task at any point in its lifecycle.
// Returns ErrClosed after Close/Drain, like Submit.
func (p *Pool) SubmitDeadline(task Task, deadline time.Time, done func(latency time.Duration)) (*TaskHandle, error) {
	return p.SubmitClassDeadline(ClassLC, task, deadline, done)
}

// SubmitClassDeadline is SubmitDeadline with an explicit service class;
// like SubmitClass, a closed admission gate refuses the task at the
// door with RejectedLatency. The deadline orders execution (EDF) but is
// soft: late work still runs. For hard expiry — drop at dequeue, unwind
// at the next safepoint — use SubmitWithOptions with Expire set.
func (p *Pool) SubmitClassDeadline(class Class, task Task, deadline time.Time, done func(latency time.Duration)) (*TaskHandle, error) {
	return p.submitOpts(class, task, time.Time{}, deadline, false, done)
}

// pushEDF enqueues an item under the EDF discipline (caller holds mu or
// is in a context where locking is handled by the caller).
func (p *Pool) pushEDFLocked(it *edfItem) {
	p.seq++
	it.seq = p.seq
	heap.Push(&p.edf, it)
}

// popEDFLocked removes the earliest-deadline live item, discarding
// cancel-evicted tombstones on the way (their done already fired at
// Cancel time). Returns nil when no live work remains.
func (p *Pool) popEDFLocked() *edfItem {
	for len(p.edf) > 0 {
		it := heap.Pop(&p.edf).(*edfItem)
		if it.st != nil && (it.st.status == TaskCancelledQueued || it.st.status == TaskShed) {
			p.tombstones--
			continue
		}
		return it
	}
	return nil
}
