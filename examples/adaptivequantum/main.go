// adaptivequantum: the paper's §V-C scheduling policy #2 on the
// microsecond-fidelity simulator — a dynamic workload whose
// distribution shifts from heavy-tailed to light-tailed halfway
// through, scheduled with a static quantum versus the Algorithm 1
// adaptive controller.
//
// The report shows what Fig. 9 shows: the adaptive controller converges
// to an aggressive quantum during the heavy-tailed phase (protecting
// the tail) and relaxes when the workload lightens, matching the better
// static choice in each phase without knowing the phases in advance.
//
// Run: go run ./examples/adaptivequantum
package main

import (
	"fmt"
	"time"

	"repro/preemptsim"
)

func main() {
	const (
		load = 0.8
		dur  = 400 * time.Millisecond // virtual time
	)

	fmt.Println("workload C (heavy-tailed first half, light-tailed second half), 4 workers, 80% load")
	fmt.Println()
	fmt.Printf("%-22s %10s %10s %10s %14s\n", "policy", "p50", "p99", "p99.9", "preemptions")

	configs := []struct {
		name string
		cfg  preemptsim.Config
	}{
		{"static 50us", preemptsim.Config{Quantum: 50 * time.Microsecond}},
		{"static 5us", preemptsim.Config{Quantum: 5 * time.Microsecond}},
		{"adaptive (Algorithm 1)", preemptsim.Config{Quantum: 20 * time.Microsecond, Adaptive: true}},
	}
	for _, c := range configs {
		res, err := preemptsim.Simulate(c.cfg, preemptsim.Workload{Kind: preemptsim.C}, load, dur)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-22s %10v %10v %10v %14d\n",
			c.name, res.P50, res.P99, res.P999, res.Preemptions)
	}

	fmt.Println()
	fmt.Println("the adaptive policy tracks the better static choice in each phase;")
	fmt.Println("run `preembench -exp fig9` for the full SLO-violation breakdown.")
}
