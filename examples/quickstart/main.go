// Quickstart: the paper's Fig. 7 example — a simple round-robin
// scheduler over N static user-level threads, built on the public
// preemptible API (fn_launch / fn_resume / fn_completed).
//
// Each task counts to a large number, checkpointing as it goes; the
// scheduler gives each a small time quantum and cycles until all
// complete. The output shows the interleaving: every task makes
// progress long before the first one finishes, which is exactly what
// preemptive scheduling buys over run-to-completion.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/preemptible"
)

const (
	numThreads = 4
	quantum    = 2 * time.Millisecond
	workUnits  = 400000
)

func main() {
	rt, err := preemptible.New(preemptible.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	progress := make([]int, numThreads)

	// fn_launch: each function starts immediately and returns control
	// at its first quantum expiry.
	fns := make([]*preemptible.Fn, numThreads)
	for i := 0; i < numThreads; i++ {
		i := i
		fn, err := rt.Launch(func(ctx *preemptible.Ctx) {
			for u := 0; u < workUnits; u++ {
				progress[i]++
				ctx.Checkpoint() // safepoint: preemption is observed here
			}
		}, quantum)
		if err != nil {
			log.Fatal(err)
		}
		fns[i] = fn
	}

	// Round-robin scheduler: resume each unfinished function for one
	// quantum until all are done (Fig. 7).
	round := 0
	for live := countLive(fns); live > 0; round++ {
		for i, fn := range fns {
			if fn.Completed() {
				continue
			}
			fn.Resume(quantum) // fn_resume
			fmt.Printf("round %2d: task %d at %6.2f%% (preempted %d times)\n",
				round, i, 100*float64(progress[i])/workUnits, fn.Preemptions)
		}
		live = countLive(fns)
	}

	fmt.Printf("\nall %d tasks complete after %d rounds; %d timer preemptions delivered\n",
		numThreads, round, rt.Preemptions())
}

func countLive(fns []*preemptible.Fn) int {
	n := 0
	for _, fn := range fns {
		if !fn.Completed() { // fn_completed
			n++
		}
	}
	return n
}
