// policylab: side-by-side scheduling-policy comparison on the
// simulator — the "separation of mechanism and policy" design goal of
// §III-C made tangible. The same heavy-tailed workload runs under
// c-FCFS with preemption, round-robin (processor sharing), clairvoyant
// SRPT, and run-to-completion FCFS, and under all four systems the
// paper compares.
//
// Run: go run ./examples/policylab
package main

import (
	"fmt"
	"time"

	"repro/preemptsim"
)

func main() {
	const (
		load = 0.8
		dur  = 300 * time.Millisecond
	)
	wl := preemptsim.Workload{Kind: preemptsim.A2}

	fmt.Println("== policies on LibPreemptible (A2, 80% load, 10us quantum) ==")
	fmt.Printf("%-24s %10s %10s %12s\n", "policy", "p50", "p99", "throughput")
	for _, pol := range []struct{ name, id string }{
		{"cFCFS + preemption", "cfcfs"},
		{"round robin (PS)", "rr"},
		{"SRPT (clairvoyant)", "srpt"},
		{"EDF", "edf"},
	} {
		res, err := preemptsim.Simulate(preemptsim.Config{
			Policy:  pol.id,
			Quantum: 10 * time.Microsecond,
		}, wl, load, dur)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-24s %10v %10v %10.0f/s\n", pol.name, res.P50, res.P99, res.ThroughputRPS)
	}

	fmt.Println()
	fmt.Println("== systems (A2, 80% load) ==")
	fmt.Printf("%-24s %10s %10s %12s\n", "system", "p50", "p99", "preemptions")
	for _, sys := range []struct {
		name string
		cfg  preemptsim.Config
	}{
		{"LibPreemptible", preemptsim.Config{System: preemptsim.LibPreemptible, Quantum: 10 * time.Microsecond}},
		{"  \" w/o UINTR", preemptsim.Config{System: preemptsim.LibPreemptibleNoUINTR, Quantum: 10 * time.Microsecond}},
		{"Shinjuku", preemptsim.Config{System: preemptsim.Shinjuku, Workers: 5, Quantum: 10 * time.Microsecond}},
		{"Libinger", preemptsim.Config{System: preemptsim.Libinger, Workers: 5, Quantum: 60 * time.Microsecond}},
		{"run-to-completion", preemptsim.Config{System: preemptsim.LibPreemptible, Quantum: 0}},
	} {
		res, err := preemptsim.Simulate(sys.cfg, wl, load, dur)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-24s %10v %10v %12d\n", sys.name, res.P50, res.P99, res.Preemptions)
	}
}
