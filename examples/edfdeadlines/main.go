// edfdeadlines: the §III-B deadline abstraction live — tasks carry SLO
// deadlines and the pool's EDF discipline orders execution by them,
// compared against deadline-blind FIFO on the same task mix.
//
// The mix interleaves urgent short tasks (tight deadlines) with bulky
// tasks (loose deadlines). Under FIFO the urgent tasks queue behind
// whatever arrived first; under EDF they overtake, and the deadline hit
// rate jumps.
//
// Run: go run ./examples/edfdeadlines
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"repro/preemptible"
)

const (
	urgentCount = 120
	bulkyCount  = 12
	urgentSLO   = 2 * time.Millisecond
	urgentWork  = 200 * time.Microsecond
	bulkyWork   = 8 * time.Millisecond
	poolQuantum = 500 * time.Microsecond
)

func main() {
	rt, err := preemptible.New(preemptible.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	for _, d := range []preemptible.Discipline{preemptible.FIFO, preemptible.EDF} {
		hit, total := run(rt, d)
		name := "FIFO"
		if d == preemptible.EDF {
			name = "EDF "
		}
		fmt.Printf("%s: %3d/%d urgent tasks met their %v deadline (%.0f%%)\n",
			name, hit, total, urgentSLO, 100*float64(hit)/float64(total))
	}
}

func run(rt *preemptible.Runtime, d preemptible.Discipline) (hit, total int64) {
	pool := preemptible.NewPool(rt, preemptible.PoolConfig{
		Workers:    1,
		Quantum:    poolQuantum,
		Discipline: d,
	})
	var wg sync.WaitGroup
	var hits atomic.Int64

	spin := func(ctx *preemptible.Ctx, dur time.Duration) {
		end := time.Now().Add(dur)
		for time.Now().Before(end) {
			for i := 0; i < 64; i++ {
				_ = i * i
			}
			ctx.Checkpoint()
		}
	}

	for i := 0; i < urgentCount; i++ {
		// A bulky task lands ahead of every 10 urgent ones.
		if i%10 == 0 && i/10 < bulkyCount {
			wg.Add(1)
			pool.SubmitDeadline(func(ctx *preemptible.Ctx) { spin(ctx, bulkyWork) },
				time.Now().Add(10*time.Second), func(time.Duration) { wg.Done() })
		}
		wg.Add(1)
		deadline := time.Now().Add(urgentSLO)
		pool.SubmitDeadline(func(ctx *preemptible.Ctx) { spin(ctx, urgentWork) },
			deadline, func(lat time.Duration) {
				if time.Now().Before(deadline) {
					hits.Add(1)
				}
				wg.Done()
			})
		time.Sleep(150 * time.Microsecond)
	}
	wg.Wait()
	pool.Close()
	return hits.Load(), urgentCount
}
