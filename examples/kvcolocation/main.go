// kvcolocation: the paper's §V-C scenario on the live runtime — a
// latency-critical MICA-style key-value store sharing workers with a
// best-effort flate-compression job, under FCFS-with-preemption
// (scheduling policy #1).
//
// 98% of submitted tasks are KV GET/SET operations against a real
// in-memory store; 2% are real DEFLATE compressions of 25 kB blocks.
// The run is repeated with and without a preemption-friendly quantum;
// the report shows the LC job's tail latency collapsing under
// preemption while the BE job keeps most of its throughput — the
// Fig. 13 effect, live.
//
// Run: go run ./examples/kvcolocation
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/bejob"
	"repro/internal/mica"
	"repro/internal/sim"
	"repro/preemptible"
)

// A single pool worker keeps the library's scheduler in charge of the
// physical CPU; LC submissions are paced open-loop so queueing reflects
// scheduling, not a submission burst.
const (
	workers   = 1
	totalOps  = 1000
	beEvery   = 25
	valueSize = 64
	lcPacing  = 300 * time.Microsecond
)

func main() {
	rt, err := preemptible.New(preemptible.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	for _, quantum := range []time.Duration{50 * time.Millisecond, 500 * time.Microsecond} {
		lcP99, beDone := run(rt, quantum)
		label := "coarse (LC unprotected)"
		if quantum < time.Millisecond {
			label = "fine (LC protected)   "
		}
		fmt.Printf("quantum %-8v %s  LC p99 = %8v   BE blocks done = %d\n",
			quantum, label, lcP99.Round(10*time.Microsecond), beDone)
	}
}

func run(rt *preemptible.Runtime, quantum time.Duration) (lcP99 time.Duration, beBlocks uint64) {
	pool := preemptible.NewPool(rt, preemptible.PoolConfig{
		Workers: workers,
		Quantum: quantum,
	})

	// The LC job: a real KV store pre-populated with a Zipfian keyspace.
	store := mica.NewStore(1<<22, 1<<14)
	zipf := sim.NewZipf(10000, 0.99)
	rng := sim.NewRNG(42)
	val := make([]byte, valueSize)
	for rank := 0; rank < 10000; rank++ {
		store.Set(mica.KeyForRank(rank), val)
	}

	// The BE job: real DEFLATE over 25 kB blocks.
	engine := bejob.NewEngine(0)
	block := bejob.MakeBlock(bejob.DefaultBlockBytes, 7)

	var mu sync.Mutex
	var lcLats []time.Duration
	var wg sync.WaitGroup

	for i := 0; i < totalOps; i++ {
		wg.Add(1)
		if i%beEvery == 0 {
			pool.Submit(func(ctx *preemptible.Ctx) {
				// Compress several blocks in fine slices so the task has
				// frequent safepoints.
				for rep := 0; rep < 4; rep++ {
					for chunk := 0; chunk < len(block); chunk += 1024 {
						end := chunk + 1024
						if end > len(block) {
							end = len(block)
						}
						if _, err := engine.CompressBlock(block[chunk:end]); err != nil {
							log.Fatal(err)
						}
						ctx.Checkpoint()
					}
				}
			}, func(time.Duration) { wg.Done() })
			continue
		}
		rank := zipf.Sample(rng)
		isSet := rng.Bernoulli(0.05)
		pool.Submit(func(ctx *preemptible.Ctx) {
			key := mica.KeyForRank(rank)
			if isSet {
				store.Set(key, val)
			} else {
				store.Get(key)
			}
		}, func(lat time.Duration) {
			mu.Lock()
			lcLats = append(lcLats, lat)
			mu.Unlock()
			wg.Done()
		})
		time.Sleep(lcPacing)
	}
	wg.Wait()
	pool.Close()

	mu.Lock()
	defer mu.Unlock()
	lats := make([]int64, len(lcLats))
	for i, l := range lcLats {
		lats[i] = int64(l)
	}
	return time.Duration(exactQuantile(lats, 0.99)), engine.BlocksDone.Load()
}

func exactQuantile(s []int64, q float64) int64 {
	if len(s) == 0 {
		return 0
	}
	// insertion-free: copy + simple sort
	cp := append([]int64(nil), s...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	idx := int(q*float64(len(cp))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(cp) {
		idx = len(cp) - 1
	}
	return cp[idx]
}
