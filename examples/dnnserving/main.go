// dnnserving: the §VII-C future-work use case, live — concurrent DNN
// inference on CPU with microsecond-class preemption. A latency-
// critical tiny MLP shares the worker pool with a large background
// model; both run *real* dense-layer inference (matmul + ReLU), with a
// preemption safepoint between layers.
//
// With a coarse quantum the big model's multi-millisecond inferences
// head-of-line block the tiny model; with a fine quantum the tiny
// model's tail collapses while the background model keeps making
// progress.
//
// Run: go run ./examples/dnnserving
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"repro/internal/dnnserve"
	"repro/preemptible"
)

// A single pool worker makes the library's scheduler — not the OS —
// the arbiter of the one physical CPU this demo typically runs on.
const (
	workers = 1
	lcCount = 200
	bgCount = 6
)

func main() {
	rt, err := preemptible.New(preemptible.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	tiny := dnnserve.TinyMLP(1)
	big := dnnserve.BigCNNProxy(2)
	fmt.Printf("LC model: %s (%d MACs)   BG model: %s (%d MACs)\n\n",
		tiny.Name, tiny.MACs(), big.Name, big.MACs())

	for _, quantum := range []time.Duration{100 * time.Millisecond, 500 * time.Microsecond} {
		p99, bgDone := serve(rt, tiny, big, quantum)
		fmt.Printf("quantum %-8v  LC p99 = %8v   BG inferences completed = %d\n",
			quantum, p99.Round(10*time.Microsecond), bgDone)
	}
}

func serve(rt *preemptible.Runtime, tiny, big *dnnserve.Model, quantum time.Duration) (time.Duration, int) {
	pool := preemptible.NewPool(rt, preemptible.PoolConfig{Workers: workers, Quantum: quantum})

	lcIn := make([]float32, tiny.InputSize())
	bgIn := make([]float32, big.InputSize())
	for i := range lcIn {
		lcIn[i] = float32(i%7) * 0.3
	}
	for i := range bgIn {
		bgIn[i] = float32(i%11) * 0.1
	}

	var mu sync.Mutex
	var lcLats []time.Duration
	bgDone := 0
	var wg sync.WaitGroup

	// Background inferences keep the pool busy.
	for i := 0; i < bgCount; i++ {
		wg.Add(1)
		pool.Submit(func(ctx *preemptible.Ctx) {
			if _, err := big.Infer(ctx, bgIn); err != nil {
				log.Fatal(err)
			}
		}, func(time.Duration) {
			mu.Lock()
			bgDone++
			mu.Unlock()
			wg.Done()
		})
	}
	// Latency-critical inferences trickle in.
	for i := 0; i < lcCount; i++ {
		wg.Add(1)
		pool.Submit(func(ctx *preemptible.Ctx) {
			if _, err := tiny.Infer(ctx, lcIn); err != nil {
				log.Fatal(err)
			}
		}, func(lat time.Duration) {
			mu.Lock()
			lcLats = append(lcLats, lat)
			mu.Unlock()
			wg.Done()
		})
		time.Sleep(200 * time.Microsecond)
	}
	wg.Wait()
	pool.Close()

	sort.Slice(lcLats, func(i, j int) bool { return lcLats[i] < lcLats[j] })
	return lcLats[len(lcLats)*99/100], bgDone
}
