// Package repro is a from-scratch Go reproduction of "LibPreemptible:
// Enabling Fast, Adaptive, and Hardware-Assisted User-Space Scheduling"
// (HPCA 2024).
//
// Public entry points:
//
//   - preemptible — the live library: the paper's fn_launch/fn_resume/
//     fn_completed API and two-level scheduler on real goroutines.
//   - preemptsim — the simulation facade: regenerate every table and
//     figure of the paper, or script custom scheduling studies.
//   - cmd/preembench — the CLI over preemptsim.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured comparison of every artifact.
package repro
